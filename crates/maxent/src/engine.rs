//! The persistent, warm-started solver engine behind the interactive loop.
//!
//! The paper's loop (§II-A, Fig. 1) re-solves the MaxEnt problem after
//! every feedback round. A cold re-solve throws away three things that are
//! still valid: the converged λ multipliers, the equivalence-class
//! partition, and the per-class spectral decompositions of the background
//! distribution. [`SolverState`] keeps all three alive across rounds:
//!
//! 1. new constraints are **appended** into the existing partition
//!    ([`crate::Partition::append`]), splitting only affected classes;
//! 2. the previous fit's λ's **warm-start** the next one, and only the
//!    *active set* of constraints perturbed by the new knowledge is swept
//!    ([`crate::Solver::append_constraints`]);
//! 3. the cached [`BackgroundDistribution`] recomputes `sym_eigen` only
//!    for classes whose covariance actually changed
//!    ([`BackgroundDistribution::refresh_from_class_params`]).
//!
//! Because the MaxEnt problem is strictly convex, warm and cold paths
//! converge to the same distribution (within the `FitOpts` tolerances) —
//! property-tested in `tests/properties.rs`.

use crate::distribution::{BackgroundDistribution, RefreshStats};
use crate::solver::{ConvergenceReport, FitOpts, Solver};
use crate::Constraint;
use crate::Result;
use sider_linalg::Matrix;
use sider_par::ThreadPool;
use std::sync::Arc;

/// Solver + fitted background distribution that persist across feedback
/// rounds. Create it with [`SolverState::cold`] on the first
/// `update_background`; afterwards feed each round's new constraints to
/// [`SolverState::refit`].
///
/// The engine owns a handle to the session's [`ThreadPool`] and uses it
/// for every per-class spectral refresh; by the pool's determinism
/// contract, results are identical at any pool size.
#[derive(Debug, Clone)]
pub struct SolverState {
    solver: Solver,
    background: BackgroundDistribution,
    last_refresh: RefreshStats,
    pool: Arc<ThreadPool>,
}

impl SolverState {
    /// Fit from scratch: build the solver, run a full fit over every
    /// constraint, and decompose every class (serial pool).
    pub fn cold(
        data: &Matrix,
        constraints: Vec<Constraint>,
        opts: &FitOpts,
    ) -> Result<(Self, ConvergenceReport)> {
        Self::cold_with(data, constraints, opts, Arc::new(ThreadPool::serial()))
    }

    /// [`SolverState::cold`] parallelizing the class decompositions over
    /// `pool`; the engine keeps the handle for later warm refreshes.
    pub fn cold_with(
        data: &Matrix,
        constraints: Vec<Constraint>,
        opts: &FitOpts,
        pool: Arc<ThreadPool>,
    ) -> Result<(Self, ConvergenceReport)> {
        let mut solver = Solver::new(data, constraints)?;
        let report = solver.fit(opts);
        let background = solver.distribution_with(&pool);
        let n_classes = solver.n_classes();
        solver.reset_dirty();
        Ok((
            SolverState {
                solver,
                background,
                last_refresh: RefreshStats {
                    classes_total: n_classes,
                    eigen_recomputed: n_classes,
                    ..RefreshStats::default()
                },
                pool,
            },
            report,
        ))
    }

    /// Warm refit: append this round's new constraints (possibly none),
    /// continue the fit from the previous optimum, and refresh only the
    /// background classes the fit actually moved.
    pub fn refit(
        &mut self,
        new_constraints: Vec<Constraint>,
        opts: &FitOpts,
    ) -> Result<ConvergenceReport> {
        self.solver.reset_dirty();
        self.solver.append_constraints(new_constraints)?;
        let report = self.solver.fit(opts);
        let any_dirty = self.solver.mean_dirty().iter().any(|&b| b)
            || self.solver.cov_dirty().iter().any(|&b| b);
        if any_dirty || self.solver.n_classes() > self.background.n_classes() {
            // The pending rank-1 moves let the refresh update cached
            // eigendecompositions in O(d²·k) instead of O(d³) where the
            // per-class rank k fits the budget (full Jacobi otherwise).
            let rank1_log = self.solver.spectral_log();
            self.last_refresh = self.background.refresh_from_class_params_with(
                self.solver.partition().class_of_row.clone(),
                self.solver.class_params(),
                self.solver.parent_of_class(),
                self.solver.mean_dirty(),
                self.solver.cov_dirty(),
                &rank1_log,
                &self.pool,
            );
            self.solver.reset_dirty();
        } else {
            // Fit moved nothing: the cached distribution is already exact.
            self.last_refresh = RefreshStats {
                classes_total: self.solver.n_classes(),
                ..RefreshStats::default()
            };
        }
        Ok(report)
    }

    /// The background distribution as of the last fit.
    pub fn background(&self) -> &BackgroundDistribution {
        &self.background
    }

    /// Consume the engine, keeping only its fitted distribution (used
    /// when warm state is invalidated but the background must survive).
    pub fn into_background(self) -> BackgroundDistribution {
        self.background
    }

    /// The underlying solver (λ's, partition, residuals, …).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// What the last background refresh had to recompute.
    pub fn last_refresh(&self) -> RefreshStats {
        self.last_refresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{cluster_constraints, margin_constraints};
    use crate::rowset::RowSet;
    use sider_stats::Rng;

    fn tight() -> FitOpts {
        FitOpts::with_tolerance(1e-8, 5000)
    }

    fn gen_data(seed: u64, n: usize, d: usize) -> Matrix {
        let mut rng = Rng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, j| {
            rng.normal(0.2 * j as f64, 1.0 + 0.3 * j as f64)
        })
    }

    #[test]
    fn cold_then_empty_refit_is_free() {
        let data = gen_data(3, 40, 3);
        let (mut state, report) =
            SolverState::cold(&data, margin_constraints(&data).unwrap(), &tight()).unwrap();
        assert!(report.converged);
        assert!(report.sweeps_done() > 0);
        // Nothing new: the refit must not sweep or re-decompose at all.
        let report2 = state.refit(Vec::new(), &tight()).unwrap();
        assert!(report2.converged);
        assert_eq!(report2.sweeps_done(), 0);
        assert_eq!(state.solver().n_active(), 0, "active set must be empty");
        assert_eq!(state.last_refresh().eigen_recomputed, 0);
        assert_eq!(state.last_refresh().mean_updated, 0);
    }

    #[test]
    fn truncated_fit_is_resumed_not_abandoned() {
        // A budget-truncated fit leaves unconverged residuals; a later
        // refit with no new knowledge must resume them, not early-return
        // a fake "converged" on an empty active set.
        let data = gen_data(23, 25, 3);
        let mut cs = margin_constraints(&data).unwrap();
        cs.extend(
            cluster_constraints(&data, RowSet::from_indices(&[0, 1, 2, 3, 4, 5]), "c").unwrap(),
        );
        let truncated = FitOpts {
            max_sweeps: 1,
            ..tight()
        };
        let (mut state, report) = SolverState::cold(&data, cs.clone(), &truncated).unwrap();
        assert!(!report.converged, "1 sweep must not converge this system");

        let resume = state.refit(Vec::new(), &tight()).unwrap();
        assert!(resume.converged);
        assert!(resume.sweeps_done() > 0, "resume must actually sweep");

        let (full, _) = SolverState::cold(&data, cs, &tight()).unwrap();
        for row in 0..25 {
            for (a, b) in state
                .background()
                .mean(row)
                .iter()
                .zip(full.background().mean(row))
            {
                assert!((a - b).abs() < 1e-5, "row {row}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn warm_refit_matches_cold_fit() {
        let data = gen_data(11, 30, 3);
        let margins = margin_constraints(&data).unwrap();
        let cluster =
            cluster_constraints(&data, RowSet::from_indices(&[0, 1, 2, 3, 4, 5, 6]), "c").unwrap();

        let (mut warm, _) = SolverState::cold(&data, margins.clone(), &tight()).unwrap();
        warm.refit(cluster.clone(), &tight()).unwrap();

        let mut all = margins;
        all.extend(cluster);
        let (cold, _) = SolverState::cold(&data, all, &tight()).unwrap();

        for row in 0..30 {
            let mw = warm.background().mean(row);
            let mc = cold.background().mean(row);
            for (a, b) in mw.iter().zip(mc) {
                assert!((a - b).abs() < 1e-6, "row {row} mean {a} vs {b}");
            }
            assert!(
                warm.background()
                    .cov(row)
                    .max_abs_diff(cold.background().cov(row))
                    < 1e-6,
                "row {row}"
            );
        }
    }

    #[test]
    fn disjoint_knowledge_leaves_classes_cached() {
        // Two disjoint clusters: fitting A then appending B must not
        // re-decompose A's classes (they are outside the active set).
        let data = gen_data(17, 24, 2);
        let a = cluster_constraints(&data, RowSet::from_indices(&[0, 1, 2, 3, 4]), "a").unwrap();
        let b = cluster_constraints(&data, RowSet::from_indices(&[10, 11, 12, 13]), "b").unwrap();
        let (mut state, _) = SolverState::cold(&data, a, &tight()).unwrap();
        let classes_before = state.solver().n_classes();
        state.refit(b, &tight()).unwrap();
        let stats = state.last_refresh();
        // B's rows split off one new class from the background class; A's
        // class and the remaining background class stay cached.
        assert!(state.solver().n_classes() > classes_before);
        assert!(
            stats.eigen_recomputed < stats.classes_total,
            "expected untouched classes to keep cached decompositions: {stats:?}"
        );
        // The refreshed background must still match a cold rebuild.
        let rebuilt = state.solver().distribution();
        for row in 0..24 {
            assert!(state.background().cov(row).max_abs_diff(rebuilt.cov(row)) < 1e-12);
        }
    }
}
