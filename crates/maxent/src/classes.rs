//! Row equivalence classes (paper §II-A, first speed-up).
//!
//! Two rows affected by exactly the same constraints have identical natural
//! and dual parameters throughout the optimization, so the solver stores
//! parameters per *class* instead of per row. The number of classes depends
//! on how constraints overlap — not on `n` — which is what makes OPTIM's
//! runtime independent of the number of data points (Table II).

use crate::constraint::Constraint;
use std::collections::HashMap;

/// The partition of `[n]` into constraint-equivalence classes.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Class id of each row.
    pub class_of_row: Vec<u32>,
    /// Number of rows per class.
    pub class_counts: Vec<usize>,
    /// For each constraint `t`, the ids of the classes contained in `Iᵗ`
    /// together with their sizes. (A class is either fully inside `Iᵗ` or
    /// disjoint from it, by construction.)
    pub classes_of_constraint: Vec<Vec<(u32, usize)>>,
    /// One representative row per class (lowest index).
    pub representative: Vec<usize>,
}

/// Outcome of [`Partition::append`]: how the refinement relates the new
/// classes to the old ones.
///
/// Appending constraints only ever *splits* classes — two rows that end up
/// in different classes were either already separated or are now
/// distinguished by a new constraint — so every new class descends from
/// exactly one old class. Class ids of the old partition remain valid: a
/// split class keeps its id for the first sub-class encountered in row
/// order, and freshly created sub-classes get ids appended at the end.
/// That id stability is what lets the solver warm-start per-class
/// parameters and the background distribution reuse cached spectral
/// decompositions for untouched classes.
#[derive(Debug, Clone)]
pub struct Refinement {
    /// For every class of the *new* partition, the id of the old class it
    /// descends from. Classes that kept their id map to themselves.
    pub parent_of_class: Vec<u32>,
    /// Number of classes before the append.
    pub n_old_classes: usize,
}

impl Refinement {
    /// Classes created by the append (ids `n_old_classes..`).
    pub fn n_new_classes(&self) -> usize {
        self.parent_of_class.len() - self.n_old_classes
    }
}

impl Partition {
    /// Compute the partition induced by `constraints` on `n` rows.
    pub fn new(n: usize, constraints: &[Constraint]) -> Partition {
        // Constraint-membership signature per row.
        let mut memberships: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (t, c) in constraints.iter().enumerate() {
            for i in c.rows.iter() {
                memberships[i].push(t as u32);
            }
        }
        // Group rows by signature. Signatures are built in increasing t, so
        // they are already sorted and canonical.
        let mut class_ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut class_of_row = vec![0u32; n];
        let mut class_counts: Vec<usize> = Vec::new();
        let mut representative: Vec<usize> = Vec::new();
        let mut class_signature: Vec<Vec<u32>> = Vec::new();
        for (i, sig) in memberships.into_iter().enumerate() {
            let next_id = class_counts.len() as u32;
            let id = *class_ids.entry(sig.clone()).or_insert_with(|| {
                class_counts.push(0);
                representative.push(i);
                class_signature.push(sig);
                next_id
            });
            class_of_row[i] = id;
            class_counts[id as usize] += 1;
        }
        // Invert: classes touched by each constraint.
        let mut classes_of_constraint: Vec<Vec<(u32, usize)>> = vec![Vec::new(); constraints.len()];
        for (class, sig) in class_signature.iter().enumerate() {
            for &t in sig {
                classes_of_constraint[t as usize].push((class as u32, class_counts[class]));
            }
        }
        Partition {
            class_of_row,
            class_counts,
            classes_of_constraint,
            representative,
        }
    }

    /// Refine the partition in place after appending constraints.
    ///
    /// `constraints` is the *full* constraint list; `first_new` is the index
    /// of the first appended constraint (everything before it was already
    /// reflected in this partition). Only classes intersecting a new
    /// constraint's row set are split; the rest keep their ids, counts and
    /// representatives untouched. Cost is `O(n + Σ_t |Iᵗ_new| + k·classes)`,
    /// independent of the cost of a full rebuild's signature hashing over
    /// all constraints.
    pub fn append(&mut self, constraints: &[Constraint], first_new: usize) -> Refinement {
        let n_old = self.class_counts.len();
        let mut parent_of_class: Vec<u32> = (0..n_old as u32).collect();
        if first_new == constraints.len() {
            return Refinement {
                parent_of_class,
                n_old_classes: n_old,
            };
        }

        // Only rows covered by a new constraint can move: collect their
        // membership signatures over the new constraints (ascending row
        // order — row sets are sorted and signatures are built in
        // increasing t, so both orders are canonical).
        let mut sig_of_row: HashMap<usize, Vec<u32>> = HashMap::new();
        for (t, c) in constraints.iter().enumerate().skip(first_new) {
            for i in c.rows.iter() {
                sig_of_row.entry(i).or_default().push(t as u32);
            }
        }
        let mut covered: Vec<usize> = sig_of_row.keys().copied().collect();
        covered.sort_unstable();
        let mut covered_per_class = vec![0usize; n_old];
        for &i in &covered {
            covered_per_class[self.class_of_row[i] as usize] += 1;
        }

        // Whether a class is fully covered must be judged against its
        // *pre-append* size — `class_counts` is decremented while rows are
        // reassigned below, and reading it mid-mutation would let a
        // partially covered class masquerade as fully covered (merging
        // covered rows with the uncovered remainder).
        let fully_covered: Vec<bool> = (0..n_old)
            .map(|c| covered_per_class[c] == self.class_counts[c])
            .collect();

        // Group covered rows by (old class, signature). A class with
        // uncovered rows keeps its id for that remainder (so its cached
        // parameters stay addressed); a fully covered class keeps its id
        // for the first sub-class in row order (no id is ever orphaned).
        let mut sub_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut old_id_taken = vec![false; n_old];
        let mut split_classes: Vec<u32> = Vec::new();
        for i in covered {
            let old = self.class_of_row[i];
            let sig = sig_of_row.remove(&i).expect("covered row has signature");
            let id = match sub_ids.entry((old, sig)) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let id = if fully_covered[old as usize] && !old_id_taken[old as usize] {
                        old_id_taken[old as usize] = true;
                        old
                    } else {
                        let id = self.class_counts.len() as u32;
                        self.class_counts.push(0);
                        parent_of_class.push(old);
                        self.representative.push(i);
                        if split_classes.last() != Some(&old) {
                            split_classes.push(old);
                        }
                        id
                    };
                    *e.insert(id)
                }
            };
            if id != old {
                self.class_counts[old as usize] -= 1;
                self.class_counts[id as usize] += 1;
                self.class_of_row[i] = id;
            }
        }

        // Repair representatives of split classes whose representative
        // row moved into a sub-class (one linear pass, only if needed).
        split_classes.sort_unstable();
        split_classes.dedup();
        let stale: Vec<u32> = split_classes
            .iter()
            .copied()
            .filter(|&c| {
                self.class_counts[c as usize] > 0
                    && self.class_of_row[self.representative[c as usize]] != c
            })
            .collect();
        if !stale.is_empty() {
            let mut pending: Vec<bool> = vec![false; self.class_counts.len()];
            for &c in &stale {
                pending[c as usize] = true;
            }
            for (i, &c) in self.class_of_row.iter().enumerate() {
                if pending[c as usize] {
                    self.representative[c as usize] = i;
                    pending[c as usize] = false;
                }
            }
        }

        // Old constraints referencing a split class: replace the class by
        // its descendants (remainder + sub-classes) and refresh counts.
        let descendants: Vec<(u32, Vec<u32>)> = split_classes
            .iter()
            .map(|&old| {
                let mut children: Vec<u32> = if self.class_counts[old as usize] > 0 {
                    vec![old]
                } else {
                    Vec::new()
                };
                children.extend(
                    (n_old..self.class_counts.len())
                        .filter(|&c| parent_of_class[c] == old)
                        .map(|c| c as u32),
                );
                (old, children)
            })
            .collect();
        for list in self.classes_of_constraint.iter_mut() {
            if !list
                .iter()
                .any(|&(c, _)| split_classes.binary_search(&c).is_ok())
            {
                continue;
            }
            let old_list = std::mem::take(list);
            for (class, size) in old_list {
                match split_classes.binary_search(&class) {
                    Err(_) => list.push((class, size)),
                    Ok(pos) => {
                        for &child in &descendants[pos].1 {
                            list.push((child, self.class_counts[child as usize]));
                        }
                    }
                }
            }
        }
        // New constraints: collect the (now fully-interior) classes of
        // their row sets directly.
        for c in &constraints[first_new..] {
            let mut seen: Vec<u32> = Vec::new();
            for i in c.rows.iter() {
                let class = self.class_of_row[i];
                if !seen.contains(&class) {
                    seen.push(class);
                }
            }
            self.classes_of_constraint.push(
                seen.into_iter()
                    .map(|class| (class, self.class_counts[class as usize]))
                    .collect(),
            );
        }

        Refinement {
            parent_of_class,
            n_old_classes: n_old,
        }
    }

    /// Number of equivalence classes.
    pub fn n_classes(&self) -> usize {
        self.class_counts.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.class_of_row.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::rowset::RowSet;
    use sider_linalg::Matrix;

    fn data(n: usize) -> Matrix {
        Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64)
    }

    fn lin(data: &Matrix, rows: &[usize]) -> Constraint {
        Constraint::linear(data, RowSet::from_indices(rows), vec![1.0, 0.0], "t").unwrap()
    }

    #[test]
    fn no_constraints_one_class() {
        let p = Partition::new(5, &[]);
        assert_eq!(p.n_classes(), 1);
        assert_eq!(p.class_counts, vec![5]);
        assert!(p.class_of_row.iter().all(|&c| c == 0));
    }

    #[test]
    fn disjoint_clusters_make_disjoint_classes() {
        let d = data(6);
        let cs = vec![lin(&d, &[0, 1]), lin(&d, &[2, 3])];
        let p = Partition::new(6, &cs);
        // Classes: {0,1}, {2,3}, {4,5}.
        assert_eq!(p.n_classes(), 3);
        assert_eq!(p.class_of_row[0], p.class_of_row[1]);
        assert_eq!(p.class_of_row[2], p.class_of_row[3]);
        assert_ne!(p.class_of_row[0], p.class_of_row[2]);
        assert_ne!(p.class_of_row[0], p.class_of_row[4]);
    }

    #[test]
    fn overlapping_constraints_split_classes() {
        // Constraints over {0,1} and {1,2}: classes {0}, {1}, {2}, {3…}.
        let d = data(4);
        let cs = vec![lin(&d, &[0, 1]), lin(&d, &[1, 2])];
        let p = Partition::new(4, &cs);
        assert_eq!(p.n_classes(), 4);
        let ids: Vec<u32> = p.class_of_row.clone();
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
        assert_ne!(ids[0], ids[2]);
    }

    #[test]
    fn full_row_constraints_do_not_split() {
        let d = data(5);
        let cs = vec![lin(&d, &[0, 1, 2, 3, 4]), lin(&d, &[0, 1, 2, 3, 4])];
        let p = Partition::new(5, &cs);
        assert_eq!(p.n_classes(), 1);
        assert_eq!(p.classes_of_constraint[0], vec![(0, 5)]);
        assert_eq!(p.classes_of_constraint[1], vec![(0, 5)]);
    }

    #[test]
    fn classes_of_constraint_cover_exactly_the_rowset() {
        let d = data(6);
        let cs = vec![lin(&d, &[0, 1, 2]), lin(&d, &[2, 3])];
        let p = Partition::new(6, &cs);
        for (t, c) in cs.iter().enumerate() {
            let covered: usize = p.classes_of_constraint[t].iter().map(|&(_, n)| n).sum();
            assert_eq!(covered, c.rows.len(), "constraint {t}");
            // Every listed class must be fully inside the row set.
            for &(class, _) in &p.classes_of_constraint[t] {
                for (row, &cl) in p.class_of_row.iter().enumerate() {
                    if cl == class {
                        assert!(c.rows.contains(row));
                    }
                }
            }
        }
    }

    #[test]
    fn representatives_belong_to_their_class() {
        let d = data(6);
        let cs = vec![lin(&d, &[0, 1, 2]), lin(&d, &[2, 3])];
        let p = Partition::new(6, &cs);
        for (class, &rep) in p.representative.iter().enumerate() {
            assert_eq!(p.class_of_row[rep] as usize, class);
        }
    }

    /// `append` must agree with a full rebuild up to class relabeling.
    fn assert_equivalent(incremental: &Partition, rebuilt: &Partition, n: usize, k: usize) {
        assert_eq!(incremental.n_classes(), rebuilt.n_classes());
        // Same grouping of rows.
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    incremental.class_of_row[i] == incremental.class_of_row[j],
                    rebuilt.class_of_row[i] == rebuilt.class_of_row[j],
                    "rows {i},{j} grouped differently"
                );
            }
        }
        // Same per-class bookkeeping under the relabeling.
        for class in 0..incremental.n_classes() {
            let rep = incremental.representative[class];
            assert_eq!(incremental.class_of_row[rep] as usize, class);
            let twin = rebuilt.class_of_row[rep] as usize;
            assert_eq!(incremental.class_counts[class], rebuilt.class_counts[twin]);
        }
        for t in 0..k {
            let mut a: Vec<usize> = incremental.classes_of_constraint[t]
                .iter()
                .map(|&(c, size)| {
                    assert_eq!(size, incremental.class_counts[c as usize]);
                    incremental.representative[c as usize]
                })
                .collect();
            let mut b: Vec<usize> = rebuilt.classes_of_constraint[t]
                .iter()
                .map(|&(c, _)| rebuilt.representative[c as usize])
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "constraint {t} covers different classes");
        }
    }

    #[test]
    fn append_matches_full_rebuild() {
        let d = data(10);
        let old = vec![lin(&d, &[0, 1, 2, 3]), lin(&d, &[3, 4, 5])];
        // Overlapping, nested, disjoint and full-cover appends.
        let new_sets: Vec<Vec<Constraint>> = vec![
            vec![lin(&d, &[0, 1])],
            vec![lin(&d, &[2, 3, 4]), lin(&d, &[7, 8])],
            vec![lin(&d, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9])],
            vec![lin(&d, &[9])],
        ];
        for new in new_sets {
            let mut all = old.clone();
            all.extend(new.iter().cloned());
            let mut incremental = Partition::new(10, &old);
            let refinement = incremental.append(&all, old.len());
            let rebuilt = Partition::new(10, &all);
            assert_equivalent(&incremental, &rebuilt, 10, all.len());
            // Refinement bookkeeping: parents are valid old classes, kept
            // ids map to themselves.
            assert_eq!(refinement.parent_of_class.len(), incremental.n_classes());
            for (class, &parent) in refinement.parent_of_class.iter().enumerate() {
                assert!((parent as usize) < refinement.n_old_classes);
                if class < refinement.n_old_classes {
                    assert_eq!(parent as usize, class);
                }
            }
        }
    }

    #[test]
    fn append_two_partial_covers_of_one_class_in_one_call() {
        // Regression: two new constraints each partially covering the same
        // old class, appended together. Judging "fully covered" against
        // counts mutated mid-append used to merge covered rows with the
        // uncovered remainder.
        let d = data(4);
        let old = vec![lin(&d, &[0, 1, 2])];
        let mut all = old.clone();
        all.push(lin(&d, &[0]));
        all.push(lin(&d, &[1]));
        let mut incremental = Partition::new(4, &old);
        incremental.append(&all, old.len());
        let rebuilt = Partition::new(4, &all);
        assert_eq!(incremental.n_classes(), 4);
        assert_equivalent(&incremental, &rebuilt, 4, all.len());
    }

    #[test]
    fn append_nothing_is_identity() {
        let d = data(6);
        let cs = vec![lin(&d, &[0, 1, 2]), lin(&d, &[2, 3])];
        let mut p = Partition::new(6, &cs);
        let before = p.clone();
        let refinement = p.append(&cs, cs.len());
        assert_eq!(refinement.n_new_classes(), 0);
        assert_eq!(p.class_of_row, before.class_of_row);
        assert_eq!(p.class_counts, before.class_counts);
        assert_eq!(p.classes_of_constraint, before.classes_of_constraint);
    }

    #[test]
    fn append_chain_matches_rebuild() {
        // Grow a constraint set one statement at a time (the interactive
        // usage pattern) and compare against rebuilds at every step.
        let d = data(12);
        let steps = [
            vec![0usize, 1, 2, 3, 4, 5],
            vec![4, 5, 6, 7],
            vec![0, 11],
            vec![6, 7, 8, 9, 10, 11],
        ];
        let mut all: Vec<Constraint> = Vec::new();
        let mut p = Partition::new(12, &all);
        for rows in &steps {
            let first_new = all.len();
            all.push(lin(&d, rows));
            p.append(&all, first_new);
            let rebuilt = Partition::new(12, &all);
            assert_equivalent(&p, &rebuilt, 12, all.len());
        }
    }

    #[test]
    fn counts_sum_to_n() {
        let d = data(9);
        let cs = vec![lin(&d, &[0, 1, 2, 3]), lin(&d, &[3, 4, 5]), lin(&d, &[8])];
        let p = Partition::new(9, &cs);
        assert_eq!(p.class_counts.iter().sum::<usize>(), 9);
        assert_eq!(p.n_rows(), 9);
    }
}
