//! Row equivalence classes (paper §II-A, first speed-up).
//!
//! Two rows affected by exactly the same constraints have identical natural
//! and dual parameters throughout the optimization, so the solver stores
//! parameters per *class* instead of per row. The number of classes depends
//! on how constraints overlap — not on `n` — which is what makes OPTIM's
//! runtime independent of the number of data points (Table II).

use crate::constraint::Constraint;
use std::collections::HashMap;

/// The partition of `[n]` into constraint-equivalence classes.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Class id of each row.
    pub class_of_row: Vec<u32>,
    /// Number of rows per class.
    pub class_counts: Vec<usize>,
    /// For each constraint `t`, the ids of the classes contained in `Iᵗ`
    /// together with their sizes. (A class is either fully inside `Iᵗ` or
    /// disjoint from it, by construction.)
    pub classes_of_constraint: Vec<Vec<(u32, usize)>>,
    /// One representative row per class (lowest index).
    pub representative: Vec<usize>,
}

impl Partition {
    /// Compute the partition induced by `constraints` on `n` rows.
    pub fn new(n: usize, constraints: &[Constraint]) -> Partition {
        // Constraint-membership signature per row.
        let mut memberships: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (t, c) in constraints.iter().enumerate() {
            for i in c.rows.iter() {
                memberships[i].push(t as u32);
            }
        }
        // Group rows by signature. Signatures are built in increasing t, so
        // they are already sorted and canonical.
        let mut class_ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut class_of_row = vec![0u32; n];
        let mut class_counts: Vec<usize> = Vec::new();
        let mut representative: Vec<usize> = Vec::new();
        let mut class_signature: Vec<Vec<u32>> = Vec::new();
        for (i, sig) in memberships.into_iter().enumerate() {
            let next_id = class_counts.len() as u32;
            let id = *class_ids.entry(sig.clone()).or_insert_with(|| {
                class_counts.push(0);
                representative.push(i);
                class_signature.push(sig);
                next_id
            });
            class_of_row[i] = id;
            class_counts[id as usize] += 1;
        }
        // Invert: classes touched by each constraint.
        let mut classes_of_constraint: Vec<Vec<(u32, usize)>> =
            vec![Vec::new(); constraints.len()];
        for (class, sig) in class_signature.iter().enumerate() {
            for &t in sig {
                classes_of_constraint[t as usize].push((class as u32, class_counts[class]));
            }
        }
        Partition {
            class_of_row,
            class_counts,
            classes_of_constraint,
            representative,
        }
    }

    /// Number of equivalence classes.
    pub fn n_classes(&self) -> usize {
        self.class_counts.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.class_of_row.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::rowset::RowSet;
    use sider_linalg::Matrix;

    fn data(n: usize) -> Matrix {
        Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64)
    }

    fn lin(data: &Matrix, rows: &[usize]) -> Constraint {
        Constraint::linear(data, RowSet::from_indices(rows), vec![1.0, 0.0], "t").unwrap()
    }

    #[test]
    fn no_constraints_one_class() {
        let p = Partition::new(5, &[]);
        assert_eq!(p.n_classes(), 1);
        assert_eq!(p.class_counts, vec![5]);
        assert!(p.class_of_row.iter().all(|&c| c == 0));
    }

    #[test]
    fn disjoint_clusters_make_disjoint_classes() {
        let d = data(6);
        let cs = vec![lin(&d, &[0, 1]), lin(&d, &[2, 3])];
        let p = Partition::new(6, &cs);
        // Classes: {0,1}, {2,3}, {4,5}.
        assert_eq!(p.n_classes(), 3);
        assert_eq!(p.class_of_row[0], p.class_of_row[1]);
        assert_eq!(p.class_of_row[2], p.class_of_row[3]);
        assert_ne!(p.class_of_row[0], p.class_of_row[2]);
        assert_ne!(p.class_of_row[0], p.class_of_row[4]);
    }

    #[test]
    fn overlapping_constraints_split_classes() {
        // Constraints over {0,1} and {1,2}: classes {0}, {1}, {2}, {3…}.
        let d = data(4);
        let cs = vec![lin(&d, &[0, 1]), lin(&d, &[1, 2])];
        let p = Partition::new(4, &cs);
        assert_eq!(p.n_classes(), 4);
        let ids: Vec<u32> = p.class_of_row.clone();
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
        assert_ne!(ids[0], ids[2]);
    }

    #[test]
    fn full_row_constraints_do_not_split() {
        let d = data(5);
        let cs = vec![lin(&d, &[0, 1, 2, 3, 4]), lin(&d, &[0, 1, 2, 3, 4])];
        let p = Partition::new(5, &cs);
        assert_eq!(p.n_classes(), 1);
        assert_eq!(p.classes_of_constraint[0], vec![(0, 5)]);
        assert_eq!(p.classes_of_constraint[1], vec![(0, 5)]);
    }

    #[test]
    fn classes_of_constraint_cover_exactly_the_rowset() {
        let d = data(6);
        let cs = vec![lin(&d, &[0, 1, 2]), lin(&d, &[2, 3])];
        let p = Partition::new(6, &cs);
        for (t, c) in cs.iter().enumerate() {
            let covered: usize = p.classes_of_constraint[t].iter().map(|&(_, n)| n).sum();
            assert_eq!(covered, c.rows.len(), "constraint {t}");
            // Every listed class must be fully inside the row set.
            for &(class, _) in &p.classes_of_constraint[t] {
                for (row, &cl) in p.class_of_row.iter().enumerate() {
                    if cl == class {
                        assert!(c.rows.contains(row));
                    }
                }
            }
        }
    }

    #[test]
    fn representatives_belong_to_their_class() {
        let d = data(6);
        let cs = vec![lin(&d, &[0, 1, 2]), lin(&d, &[2, 3])];
        let p = Partition::new(6, &cs);
        for (class, &rep) in p.representative.iter().enumerate() {
            assert_eq!(p.class_of_row[rep] as usize, class);
        }
    }

    #[test]
    fn counts_sum_to_n() {
        let d = data(9);
        let cs = vec![lin(&d, &[0, 1, 2, 3]), lin(&d, &[3, 4, 5]), lin(&d, &[8])];
        let p = Partition::new(9, &cs);
        assert_eq!(p.class_counts.iter().sum::<usize>(), 9);
        assert_eq!(p.n_rows(), 9);
    }
}
