//! Per-class Gaussian parameters of the background distribution.
//!
//! Each equivalence class shares one Gaussian `N(m, Σ)` with natural
//! parameters `(h, P)` where `P = Σ⁻¹` and `h = P·m` (paper Eq. 8). The
//! solver keeps **both** representations in sync — the natural side is
//! updated by constraint terms, the dual side via Woodbury — so no matrix
//! inversion is ever needed during optimization.

use sider_linalg::Matrix;

/// Parameters of one equivalence class.
#[derive(Debug, Clone)]
pub struct ClassParams {
    /// Number of rows sharing these parameters.
    pub count: usize,
    /// Natural linear parameter `h = Σ⁻¹m` (θ₁ in the paper).
    pub h: Vec<f64>,
    /// Dual mean `m = Σ·h`.
    pub m: Vec<f64>,
    /// Dual covariance `Σ`.
    pub sigma: Matrix,
    /// Natural precision `P = Σ⁻¹` (θ₂ in the paper).
    pub prec: Matrix,
}

impl ClassParams {
    /// Prior parameters: `m = 0`, `Σ = P = I` (the spherical unit Gaussian
    /// of Eq. 1).
    pub fn prior(d: usize, count: usize) -> Self {
        ClassParams {
            count,
            h: vec![0.0; d],
            m: vec![0.0; d],
            sigma: Matrix::identity(d),
            prec: Matrix::identity(d),
        }
    }

    /// Parameters of a class split off from this one: identical Gaussian,
    /// different row count. Until a constraint multiplier moves, a
    /// sub-class is statistically indistinguishable from its parent — this
    /// is what makes warm-starting after a partition refinement exact.
    pub fn split_off(&self, count: usize) -> Self {
        ClassParams {
            count,
            ..self.clone()
        }
    }

    /// Recompute the dual mean from the natural parameters: `m = Σ·h`.
    pub fn refresh_mean(&mut self) {
        self.m = self.sigma.matvec(&self.h);
    }

    /// Internal-consistency check: `Σ·P ≈ I` and `m ≈ Σ·h`, within `tol`.
    pub fn is_consistent(&self, tol: f64) -> bool {
        let d = self.sigma.rows();
        let id = Matrix::identity(d);
        if self.sigma.matmul(&self.prec).max_abs_diff(&id) > tol {
            return false;
        }
        let m2 = self.sigma.matvec(&self.h);
        self.m.iter().zip(&m2).all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_is_standard_normal() {
        let p = ClassParams::prior(3, 7);
        assert_eq!(p.count, 7);
        assert_eq!(p.m, vec![0.0; 3]);
        assert_eq!(p.sigma, Matrix::identity(3));
        assert_eq!(p.prec, Matrix::identity(3));
        assert!(p.is_consistent(1e-12));
    }

    #[test]
    fn refresh_mean_applies_sigma() {
        let mut p = ClassParams::prior(2, 1);
        p.h = vec![1.0, 2.0];
        p.sigma = Matrix::from_diag(&[0.5, 0.25]);
        p.refresh_mean();
        assert_eq!(p.m, vec![0.5, 0.5]);
    }

    #[test]
    fn consistency_detects_desync() {
        let mut p = ClassParams::prior(2, 1);
        p.prec = Matrix::from_diag(&[2.0, 2.0]); // sigma still identity
        assert!(!p.is_consistent(1e-9));
    }
}
