//! Naive reference solver: per-row parameters, explicit matrix inversion.
//!
//! This is the "straightforward implementation" the paper calls *inefficient*
//! (§II-A: storing parameters for all `n` rows and inverting matrices at
//! `O(d³)`, for `O(n·d³)` per constraint). We keep it for two purposes:
//!
//! 1. **Correctness oracle** — it implements the update equations with no
//!    equivalence classes and no Woodbury tricks, so agreement with
//!    [`crate::Solver`] validates both optimizations.
//! 2. **Ablation baseline** — the `eqclass` benchmark measures exactly the
//!    speed-up the paper claims.

use crate::constraint::{Constraint, ConstraintKind};
use crate::distribution::BackgroundDistribution;
use crate::error::MaxEntError;
use crate::params::ClassParams;
use crate::rootfind::{solve_quad_lambda, QuadItem};
use crate::Result;
use sider_linalg::{lu, vector, Matrix};

/// Per-row parameters (the "no equivalence classes" representation).
#[derive(Debug, Clone)]
struct RowParams {
    h: Vec<f64>,
    m: Vec<f64>,
    sigma: Matrix,
    prec: Matrix,
}

impl RowParams {
    fn prior(d: usize) -> Self {
        RowParams {
            h: vec![0.0; d],
            m: vec![0.0; d],
            sigma: Matrix::identity(d),
            prec: Matrix::identity(d),
        }
    }
}

/// The naive `O(n·d³)`-per-constraint solver.
#[derive(Debug, Clone)]
pub struct NaiveSolver {
    d: usize,
    constraints: Vec<Constraint>,
    rows: Vec<RowParams>,
    lambdas: Vec<f64>,
    sweeps_done: usize,
}

impl NaiveSolver {
    /// Set up the solver; parameters start at the prior.
    pub fn new(data: &Matrix, constraints: Vec<Constraint>) -> Result<Self> {
        let (n, d) = data.shape();
        if n == 0 || d == 0 {
            return Err(MaxEntError::EmptyData);
        }
        if !data.is_finite() {
            return Err(MaxEntError::NotFinite);
        }
        for c in &constraints {
            c.rows.validate(n)?;
        }
        let k = constraints.len();
        Ok(NaiveSolver {
            d,
            constraints,
            rows: (0..n).map(|_| RowParams::prior(d)).collect(),
            lambdas: vec![0.0; k],
            sweeps_done: 0,
        })
    }

    /// Current model expectation of constraint `t`.
    pub fn expectation(&self, t: usize) -> f64 {
        let c = &self.constraints[t];
        let w = &c.w;
        c.rows
            .iter()
            .map(|i| {
                let p = &self.rows[i];
                match c.kind {
                    ConstraintKind::Linear => vector::dot(&p.m, w),
                    ConstraintKind::Quadratic => {
                        let dev = vector::dot(&p.m, w) - c.delta;
                        p.sigma.quad_form(w) + dev * dev
                    }
                }
            })
            .sum()
    }

    /// One pass over all constraints; returns `max_t |Δλ_t|`.
    pub fn sweep(&mut self, lambda_max: f64) -> f64 {
        let mut max_dl = 0.0_f64;
        for t in 0..self.constraints.len() {
            let dl = match self.constraints[t].kind {
                ConstraintKind::Linear => self.update_linear(t),
                ConstraintKind::Quadratic => self.update_quadratic(t, lambda_max),
            };
            self.lambdas[t] += dl;
            max_dl = max_dl.max(dl.abs());
        }
        self.sweeps_done += 1;
        max_dl
    }

    fn update_linear(&mut self, t: usize) -> f64 {
        let c = &self.constraints[t];
        let w = c.w.clone();
        let target = c.target;
        let members: Vec<usize> = c.rows.iter().collect();
        let mut v_now = 0.0;
        let mut denom = 0.0;
        for &i in &members {
            let p = &self.rows[i];
            v_now += vector::dot(&p.m, &w);
            denom += p.sigma.quad_form(&w);
        }
        if denom <= 1e-300 {
            return 0.0;
        }
        let lambda = (target - v_now) / denom;
        for &i in &members {
            let p = &mut self.rows[i];
            vector::axpy(lambda, &w, &mut p.h);
            let g = p.sigma.matvec(&w);
            vector::axpy(lambda, &g, &mut p.m);
        }
        lambda
    }

    fn update_quadratic(&mut self, t: usize, lambda_max: f64) -> f64 {
        let c = &self.constraints[t];
        let w = c.w.clone();
        let target = c.target;
        let delta = c.delta;
        // Cap the cumulative multiplier, mirroring the optimized solver.
        let budget = (lambda_max - self.lambdas[t]).max(0.0);
        let members: Vec<usize> = c.rows.iter().collect();
        let items: Vec<QuadItem> = members
            .iter()
            .map(|&i| {
                let p = &self.rows[i];
                QuadItem {
                    weight: 1.0,
                    c: p.sigma.quad_form(&w).max(0.0),
                    e: vector::dot(&p.m, &w),
                }
            })
            .collect();
        let lambda = solve_quad_lambda(&items, delta, target, budget).lambda;
        if lambda == 0.0 {
            return 0.0;
        }
        for &i in &members {
            let p = &mut self.rows[i];
            // Update the precision, then invert it from scratch — the
            // O(d³) step the optimized solver avoids.
            p.prec.add_outer(lambda, &w, &w);
            p.prec.symmetrize();
            p.sigma = lu::inverse(&p.prec).expect("precision must stay invertible");
            p.sigma.symmetrize();
            vector::axpy(lambda * delta, &w, &mut p.h);
            p.m = p.sigma.matvec(&p.h);
        }
        lambda
    }

    /// Run sweeps until `max|Δλ| ≤ lambda_tol` or the sweep budget is spent.
    /// Returns `(sweeps, converged)`.
    pub fn fit(&mut self, lambda_tol: f64, max_sweeps: usize, lambda_max: f64) -> (usize, bool) {
        if self.constraints.is_empty() {
            return (0, true);
        }
        for s in 1..=max_sweeps {
            if self.sweep(lambda_max) <= lambda_tol {
                return (s, true);
            }
        }
        (max_sweeps, false)
    }

    /// Mean of row `i`'s Gaussian.
    pub fn mean(&self, i: usize) -> &[f64] {
        &self.rows[i].m
    }

    /// Covariance of row `i`'s Gaussian.
    pub fn cov(&self, i: usize) -> &Matrix {
        &self.rows[i].sigma
    }

    /// Cumulative multipliers.
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Package as a [`BackgroundDistribution`] (one "class" per row).
    pub fn distribution(&self) -> BackgroundDistribution {
        let params: Vec<ClassParams> = self
            .rows
            .iter()
            .map(|p| ClassParams {
                count: 1,
                h: p.h.clone(),
                m: p.m.clone(),
                sigma: p.sigma.clone(),
                prec: p.prec.clone(),
            })
            .collect();
        let class_of_row: Vec<u32> = (0..self.rows.len() as u32).collect();
        BackgroundDistribution::from_class_params(self.d, class_of_row, &params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{cluster_constraints, margin_constraints};
    use crate::rowset::RowSet;
    use crate::solver::Solver;
    use sider_stats::Rng;

    fn small_data() -> Matrix {
        let mut rng = Rng::seed_from_u64(77);
        Matrix::from_fn(12, 3, |_, j| rng.normal(j as f64 * 0.5, 1.0 + j as f64))
    }

    /// Margin + one overlapping cluster constraint set.
    fn constraint_set(data: &Matrix) -> Vec<Constraint> {
        let mut cs = margin_constraints(data).unwrap();
        cs.extend(cluster_constraints(data, RowSet::from_indices(&[0, 1, 2, 3]), "a").unwrap());
        cs.extend(cluster_constraints(data, RowSet::from_indices(&[3, 4, 5]), "b").unwrap());
        cs
    }

    #[test]
    fn naive_matches_optimized_solver_per_row() {
        let data = small_data();
        let cs = constraint_set(&data);
        let mut fast = Solver::new(&data, cs.clone()).unwrap();
        let mut slow = NaiveSolver::new(&data, cs).unwrap();
        // λ_max = 1e6 keeps the naive solver's explicit inversions well
        // conditioned so the two parameter trajectories stay comparable.
        for _ in 0..25 {
            fast.sweep(1e6);
            slow.sweep(1e6);
        }
        for i in 0..data.rows() {
            let pf = fast.params_for_row(i);
            let m_diff: f64 =
                pf.m.iter()
                    .zip(slow.mean(i))
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
            assert!(m_diff < 1e-6, "row {i} mean diff {m_diff}");
            let s_diff = pf.sigma.max_abs_diff(slow.cov(i));
            assert!(s_diff < 1e-6, "row {i} sigma diff {s_diff}");
        }
        // Multipliers agree too (looser: the naive solver's explicit
        // inversions on the clamped zero-variance direction of cluster "b"
        // accumulate conditioning error in λ while the parameters stay
        // tight; the exact magnitude also shifts with the eigenbasis the
        // scatter decomposition picks inside degenerate subspaces).
        for (a, b) in fast.lambdas().iter().zip(slow.lambdas()) {
            assert!((a - b).abs() < 5e-3 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn naive_satisfies_targets() {
        let data = small_data();
        let cs = margin_constraints(&data).unwrap();
        let mut s = NaiveSolver::new(&data, cs).unwrap();
        let (_, converged) = s.fit(1e-9, 500, 1e12);
        assert!(converged);
        for t in 0..s.constraints.len() {
            let res = (s.expectation(t) - s.constraints[t].target).abs();
            assert!(res < 1e-6, "t={t} residual {res}");
        }
    }

    #[test]
    fn naive_distribution_roundtrip() {
        let data = small_data();
        let cs = margin_constraints(&data).unwrap();
        let mut s = NaiveSolver::new(&data, cs).unwrap();
        s.fit(1e-8, 500, 1e12);
        let bg = s.distribution();
        assert_eq!(bg.n(), data.rows());
        assert_eq!(bg.n_classes(), data.rows()); // one class per row
                                                 // Whitening its own background sample yields ~unit scatter.
        let mut rng = Rng::seed_from_u64(3);
        let sample = bg.sample(&mut rng);
        let y = bg.whiten(&sample).unwrap();
        let total_var = sider_stats::descriptive::population_variance(y.as_slice());
        assert!((total_var - 1.0).abs() < 0.25, "var {total_var}");
    }

    #[test]
    fn rejects_empty_data() {
        assert!(NaiveSolver::new(&Matrix::zeros(0, 3), vec![]).is_err());
    }
}
