//! Guided exploration: information-gain view recommendation.
//!
//! The SIDER loop (paper §II) always shows the user *the* maximally
//! informative projection, but a real exploration session benefits from a
//! shortlist: "here are the k views most worth looking at next". This
//! crate turns that into a batch-scoring problem over the session's
//! current background model, exactly as *Human-guided Data Exploration
//! Using Randomisation* frames next-view selection:
//!
//! 1. **Generate** a deterministic candidate batch of 2-D projection
//!    planes in *whitened* space ([`recommend`] with a
//!    [`SuggestRequest`]): pairs of PCA directions of the current
//!    whitened second moment, pairs of FastICA directions of the current
//!    whitened data, pairs of attribute axes, and counter-seeded random
//!    orthonormal planes filling the batch.
//! 2. **Score** every candidate by the information gain of the projected
//!    data against the background: per axis, the whitened variance `σ²`
//!    maps to `(σ² − log σ² − 1)/2` — the KL divergence to the unit
//!    Gaussian the background predicts (paper footnote 1), the same
//!    functional the PCA view ordering uses
//!    ([`sider_projection::display_score`]).
//! 3. **Rank** by total gain (descending; candidate index breaks ties)
//!    and return the top `k` as a [`SuggestResponse`].
//!
//! ## Purity
//!
//! A suggest call is a **pure read**. The random candidates draw from
//! [`Rng::substream`] streams keyed by the *request-supplied* seed and
//! the candidate counter — never from the session RNG — and the engine
//! takes `&EdaSession`, so the compiler guarantees no session state
//! changes. This is what lets `sider_server` serve suggest requests on
//! read-only replication followers.
//!
//! ## Determinism
//!
//! The ranked list is byte-identical at any thread and stripe count:
//! candidate generation reuses the fused
//! `whiten_project_with`/`whitened_second_moment_with` kernels (both
//! bit-identical at any pool size), FastICA runs on seeded substreams,
//! and the batch fans over the session's pool with `par_map` — a
//! placement-deterministic, order-preserving chunk map — while each
//! candidate's row reduction is a fixed sequential sum. The server e2e
//! and replication suites pin the resulting response bytes.

use sider_core::session::EdaSession;
use sider_core::wire::{SuggestRequest, SuggestResponse, Suggestion};
use sider_core::{CoreError, Result};
use sider_linalg::Matrix;
use sider_par::ThreadPool;
use sider_projection::{display_score, fastica_with, pca_directions_from_moment, IcaOpts};
use sider_stats::Rng;

/// Substream index reserved for the FastICA initialization draws.
const ICA_SUBSTREAM: u64 = 0x1CA;
/// Substream base for random candidates: candidate `c` draws from
/// `Rng::substream(seed, RANDOM_SUBSTREAM_BASE + c)`.
const RANDOM_SUBSTREAM_BASE: u64 = 1 << 32;
/// PCA directions considered for pairing (caps the quadratic blow-up on
/// wide datasets).
const MAX_PCA_DIRECTIONS: usize = 8;
/// ICA components considered for pairing.
const MAX_ICA_COMPONENTS: usize = 4;
/// Attribute axes considered for pairing.
const MAX_ATTR_AXES: usize = 12;

/// One generated candidate plane, before scoring.
struct Candidate {
    source: &'static str,
    label: String,
    /// `2 × d` plane in whitened space.
    axes: Matrix,
}

/// Score a deterministic candidate batch against the session's current
/// background model and return the `k` most informative planes, ranked.
///
/// Pure read: the session is untouched (see the crate docs for why that
/// matters for replication followers). Deterministic: byte-identical
/// output at any pool size for the same session state and request.
pub fn recommend(session: &EdaSession, req: &SuggestRequest) -> Result<SuggestResponse> {
    let d = session.dataset().d();
    if d < 2 {
        return Err(CoreError::BadDataset(
            "suggest needs at least 2 columns to form a projection plane".into(),
        ));
    }
    let candidates = generate_candidates(session, req.seed, req.batch)?;

    let data = session.data();
    let background = session.background();
    let n = data.rows();
    // Fan the batch over the session pool; every candidate's kernel runs
    // on the serial singleton so the only dispatch level is the batch
    // itself (`par_map` is placement-deterministic and order-preserving).
    let pool = session
        .pool()
        .gated(candidates.len().saturating_mul(n * (d * d + 2 * d)));
    let scored: Vec<Result<(f64, [f64; 2])>> = pool.par_map(&candidates, |c| {
        let p = background.whiten_project_with(data, &c.axes, &ThreadPool::serial())?;
        let mut sums = [0.0f64; 2];
        for i in 0..n {
            sums[0] += p[(i, 0)] * p[(i, 0)];
            sums[1] += p[(i, 1)] * p[(i, 1)];
        }
        let gains = [
            display_score(sums[0] / n as f64),
            display_score(sums[1] / n as f64),
        ];
        Ok((gains[0] + gains[1], gains))
    });

    let mut suggestions: Vec<Suggestion> = candidates
        .into_iter()
        .zip(scored)
        .enumerate()
        .map(|(candidate, (c, score))| {
            let (gain, axis_gains) = score?;
            Ok(Suggestion {
                candidate,
                source: c.source,
                label: c.label,
                axes: c.axes,
                gain,
                axis_gains,
            })
        })
        .collect::<Result<_>>()?;
    let batch = suggestions.len();
    // Descending gain; the deterministic generation index breaks ties, so
    // the ranking never depends on sort internals.
    suggestions.sort_by(|a, b| {
        b.gain
            .partial_cmp(&a.gain)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.candidate.cmp(&b.candidate))
    });
    suggestions.truncate(req.k);
    Ok(SuggestResponse {
        seed: req.seed,
        batch,
        k: req.k,
        suggestions,
    })
}

/// Build the deterministic candidate batch: PCA pairs, ICA pairs,
/// attribute pairs, then counter-seeded random planes until `batch`
/// candidates exist. Truncation (a small `batch`) keeps the prefix, so
/// the candidate at a given index never depends on the batch size.
fn generate_candidates(session: &EdaSession, seed: u64, batch: usize) -> Result<Vec<Candidate>> {
    let d = session.dataset().d();
    let data = session.data();
    let background = session.background();
    let pool = session.pool();
    let mut out: Vec<Candidate> = Vec::with_capacity(batch);

    // PCA directions of the current whitened second moment — the same
    // spectrum the PCA view ranks, so the top pair reproduces the view
    // the session would show next.
    let moment = background.whitened_second_moment_with(data, pool)?;
    let pca = pca_directions_from_moment(data.rows(), moment)?;
    let take = pca.directions.rows().min(MAX_PCA_DIRECTIONS);
    push_pairs(&mut out, batch, take, |i, j| Candidate {
        source: "pca",
        label: format!("PCA{} × PCA{}", i + 1, j + 1),
        axes: plane(pca.directions.row(i), pca.directions.row(j)),
    });

    // ICA directions of the current whitened data: non-Gaussian structure
    // that variance cannot see. The fixed-point iteration initializes
    // from a request-local substream, and a session state where FastICA
    // cannot run (e.g. a fully collapsed background) just contributes no
    // candidates — the failure is deterministic too.
    if out.len() < batch {
        let whitened = session.whitened()?;
        let mut rng = Rng::substream(seed, ICA_SUBSTREAM);
        if let Ok(ica) = fastica_with(&whitened, &IcaOpts::default(), &mut rng, pool) {
            let take = ica.directions.rows().min(MAX_ICA_COMPONENTS);
            push_pairs(&mut out, batch, take, |i, j| Candidate {
                source: "ica",
                label: format!("ICA{} × ICA{}", i + 1, j + 1),
                axes: plane(ica.directions.row(i), ica.directions.row(j)),
            });
        }
    }

    // Attribute axes as seen in whitened space: "what does the background
    // still mispredict about (X_i, X_j)?" — labeled with column names.
    let names = &session.dataset().column_names;
    let take = d.min(MAX_ATTR_AXES);
    push_pairs(&mut out, batch, take, |i, j| {
        let mut axes = Matrix::zeros(2, d);
        axes[(0, i)] = 1.0;
        axes[(1, j)] = 1.0;
        Candidate {
            source: "attr",
            label: format!("{} × {}", names[i], names[j]),
            axes,
        }
    });

    // Counter-seeded random planes fill the rest of the batch. Candidate
    // `c` owns substream `RANDOM_SUBSTREAM_BASE + c`, so the plane at a
    // given index is a pure function of (session state, seed, index) —
    // independent of batch size and of every other candidate.
    while out.len() < batch {
        let c = out.len();
        let mut rng = Rng::substream(seed, RANDOM_SUBSTREAM_BASE + c as u64);
        out.push(Candidate {
            source: "random",
            label: format!("random#{c}"),
            axes: random_plane(d, &mut rng),
        });
    }
    out.truncate(batch);
    Ok(out)
}

/// Push the `(i, j)` pairs (`i < j < take`) of a direction family until
/// the batch is full.
fn push_pairs(
    out: &mut Vec<Candidate>,
    batch: usize,
    take: usize,
    make: impl Fn(usize, usize) -> Candidate,
) {
    for i in 0..take {
        for j in (i + 1)..take {
            if out.len() >= batch {
                return;
            }
            out.push(make(i, j));
        }
    }
}

/// Stack two direction slices into a `2 × d` plane.
fn plane(a: &[f64], b: &[f64]) -> Matrix {
    Matrix::from_rows(&[a.to_vec(), b.to_vec()])
}

/// Draw a uniformly random orthonormal 2-plane: two standard-normal
/// vectors, Gram-Schmidt orthonormalized. Degenerate draws (numerically
/// zero norm or near-collinear pair) redraw from the same stream, so the
/// result is still a pure function of the stream.
fn random_plane(d: usize, rng: &mut Rng) -> Matrix {
    loop {
        let v0 = rng.standard_normal_vec(d);
        let n0 = norm(&v0);
        if n0 < 1e-12 {
            continue;
        }
        let u0: Vec<f64> = v0.iter().map(|x| x / n0).collect();
        let v1 = rng.standard_normal_vec(d);
        let dot: f64 = u0.iter().zip(&v1).map(|(a, b)| a * b).sum();
        let w: Vec<f64> = v1.iter().zip(&u0).map(|(x, u)| x - dot * u).collect();
        let n1 = norm(&w);
        if n1 < 1e-9 {
            continue;
        }
        let u1: Vec<f64> = w.iter().map(|x| x / n1).collect();
        return Matrix::from_rows(&[u0, u1]);
    }
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sider_core::wire::suggest_response_to_json;
    use sider_data::synthetic::three_d_four_clusters;
    use sider_maxent::FitOpts;
    use sider_projection::Method;
    use std::sync::Arc;

    fn session_with(threads: usize) -> EdaSession {
        let mut s = EdaSession::with_pool(
            three_d_four_clusters(2018),
            7,
            Arc::new(ThreadPool::new(threads)),
        )
        .unwrap();
        s.add_margin_constraints().unwrap();
        s.add_cluster_constraint(&(0..40).collect::<Vec<_>>())
            .unwrap();
        s.update_background(&FitOpts::default()).unwrap();
        s
    }

    fn request() -> SuggestRequest {
        SuggestRequest {
            seed: 42,
            batch: 64,
            k: 8,
        }
    }

    #[test]
    fn top_k_is_byte_identical_across_pool_sizes() {
        let serial = recommend(&session_with(1), &request()).unwrap();
        let pooled = recommend(&session_with(4), &request()).unwrap();
        assert_eq!(
            suggest_response_to_json(&serial).dump(),
            suggest_response_to_json(&pooled).dump(),
            "suggest ranking must not depend on the pool size"
        );
    }

    #[test]
    fn suggest_is_a_pure_read() {
        let mut touched = session_with(1);
        let mut untouched = session_with(1);
        let before = touched.knowledge().len();
        recommend(&touched, &request()).unwrap();
        recommend(
            &touched,
            &SuggestRequest {
                seed: 9,
                ..request()
            },
        )
        .unwrap();
        assert_eq!(touched.knowledge().len(), before);
        assert!(!touched.is_dirty());
        // The session RNG never advanced: the next view matches a twin
        // session that never served a suggest call, byte for byte.
        let a = sider_core::wire::view_to_json(
            &touched.next_view(&Method::Ica(IcaOpts::default())).unwrap(),
        );
        let b = sider_core::wire::view_to_json(
            &untouched
                .next_view(&Method::Ica(IcaOpts::default()))
                .unwrap(),
        );
        assert_eq!(a.dump(), b.dump());
    }

    #[test]
    fn ranking_is_sorted_and_echoes_the_request() {
        let resp = recommend(&session_with(1), &request()).unwrap();
        assert_eq!(resp.seed, 42);
        assert_eq!(resp.batch, 64);
        assert_eq!(resp.k, 8);
        assert_eq!(resp.suggestions.len(), 8);
        for pair in resp.suggestions.windows(2) {
            assert!(
                pair[0].gain >= pair[1].gain,
                "suggestions must be ranked by descending gain"
            );
        }
        for s in &resp.suggestions {
            assert!(s.candidate < 64);
            assert_eq!(s.axes.rows(), 2);
            assert_eq!(s.axes.cols(), 3);
            assert!(s.gain.is_finite() && s.gain >= 0.0);
            assert!((s.gain - s.axis_gains[0] - s.axis_gains[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_mixes_all_candidate_families() {
        // d = 3 yields 3 PCA pairs, ≤ 3 ICA pairs, and 3 attribute pairs;
        // a batch of 64 is therefore mostly random planes. Ask for the
        // full batch back to observe every family.
        let req = SuggestRequest {
            seed: 42,
            batch: 64,
            k: 64,
        };
        let resp = recommend(&session_with(1), &req).unwrap();
        assert_eq!(resp.suggestions.len(), 64);
        for family in ["pca", "attr", "random"] {
            assert!(
                resp.suggestions.iter().any(|s| s.source == family),
                "batch should contain a '{family}' candidate"
            );
        }
        // Attribute candidates carry the dataset's column names.
        let attr = resp
            .suggestions
            .iter()
            .find(|s| s.source == "attr")
            .unwrap();
        assert!(attr.label.contains('×'));
    }

    #[test]
    fn request_seed_drives_the_random_candidates() {
        let session = session_with(1);
        let a = recommend(
            &session,
            &SuggestRequest {
                seed: 1,
                batch: 64,
                k: 64,
            },
        )
        .unwrap();
        let b = recommend(
            &session,
            &SuggestRequest {
                seed: 2,
                batch: 64,
                k: 64,
            },
        )
        .unwrap();
        let axes_of = |r: &SuggestResponse| -> Vec<Vec<u64>> {
            let mut v: Vec<_> = r
                .suggestions
                .iter()
                .filter(|s| s.source == "random")
                .map(|s| s.axes.as_slice().iter().map(|x| x.to_bits()).collect())
                .collect();
            v.sort();
            v
        };
        assert_ne!(
            axes_of(&a),
            axes_of(&b),
            "seed must change the random planes"
        );
        // Same seed reproduces the response exactly.
        let c = recommend(
            &session,
            &SuggestRequest {
                seed: 1,
                batch: 64,
                k: 64,
            },
        )
        .unwrap();
        assert_eq!(
            suggest_response_to_json(&a).dump(),
            suggest_response_to_json(&c).dump()
        );
    }

    #[test]
    fn candidate_prefix_is_stable_under_batch_growth() {
        // The candidate at index c is a pure function of (state, seed, c):
        // growing the batch must not re-seed or re-order the prefix.
        let session = session_with(1);
        let small = recommend(
            &session,
            &SuggestRequest {
                seed: 3,
                batch: 64,
                k: 64,
            },
        )
        .unwrap();
        let large = recommend(
            &session,
            &SuggestRequest {
                seed: 3,
                batch: 96,
                k: 96,
            },
        )
        .unwrap();
        let by_candidate = |r: &SuggestResponse, c: usize| -> Vec<u64> {
            let s = r.suggestions.iter().find(|s| s.candidate == c).unwrap();
            s.axes.as_slice().iter().map(|x| x.to_bits()).collect()
        };
        for c in [0usize, 13, 40, 63] {
            assert_eq!(by_candidate(&small, c), by_candidate(&large, c));
        }
    }
}
