//! Divide-and-conquer symmetric eigensolver (Cuppen 1981, LAPACK dstedc).
//!
//! The pipeline is `A = Q·T·Qᵀ` ([`crate::tridiag`]) followed by a
//! recursion on the tridiagonal `T`: split on an off-diagonal element β,
//!
//! `T = blockdiag(T₁̂, T₂̂) + β·u·uᵀ`, `u = (e_last; e_first)`,
//!
//! where `T₁̂`/`T₂̂` are the halves with β subtracted from the adjacent
//! diagonal entries. In the eigenbasis of the solved halves this is the
//! diagonal-plus-rank-1 problem of the private `secular` module — the same
//! deflation + safeguarded-Newton kernel that powers
//! [`SymEigen::rank1_update`] — so the merge costs `O(n·m²)` with `m` the
//! non-deflated count, and leaves small enough for Jacobi are solved
//! directly. Against cyclic Jacobi's `O(n³·sweeps)` this wins roughly the
//! sweep count once `n` clears the dispatch threshold, and deflation makes
//! clustered spectra cheaper still.
//!
//! [`SymEigen::decompose`] is the policy entry point every call site in
//! the workspace routes through: Jacobi below
//! [`DecomposeOpts::dc_threshold`] (and as the fallback), D&C above it,
//! accepted only if the [`SymEigen::orthogonality_drift`] probe stays
//! within [`DecomposeOpts::drift_tol`] — the same probe-and-fall-back
//! contract as the incremental update path in `sider_maxent`.

use crate::eigen::{sym_eigen, SymEigen};
use crate::matrix::Matrix;
use crate::secular;
use crate::Result;

/// Subproblems at or below this size are solved by cyclic Jacobi directly:
/// below ~24 the O(n²) merge bookkeeping costs as much as the sweeps.
const DC_LEAF: usize = 24;

/// Policy knobs for [`SymEigen::decompose_with`].
#[derive(Debug, Clone, Copy)]
pub struct DecomposeOpts {
    /// Matrices smaller than this go straight to Jacobi — at small `d`
    /// the tridiagonalization + merge overhead dominates and Jacobi's
    /// robustness is free.
    pub dc_threshold: usize,
    /// Accept the D&C result only while `orthogonality_drift()` stays
    /// within this bound; beyond it (or on any D&C error) the dispatch
    /// falls back to Jacobi. Setting it below zero forces the fallback —
    /// the failure-injection point used by the property tests.
    pub drift_tol: f64,
}

impl Default for DecomposeOpts {
    fn default() -> Self {
        DecomposeOpts {
            dc_threshold: 32,
            drift_tol: 1e-8,
        }
    }
}

impl SymEigen {
    /// Symmetric eigendecomposition with the default dispatch policy:
    /// divide-and-conquer above `d = 32` with a drift-probed Jacobi
    /// fallback, cyclic Jacobi below. This is the single entry point the
    /// whole workspace routes through, so threshold and fallback policy
    /// live in one place.
    pub fn decompose(a: &Matrix) -> Result<SymEigen> {
        Self::decompose_with(a, &DecomposeOpts::default())
    }

    /// [`SymEigen::decompose`] with explicit policy knobs.
    pub fn decompose_with(a: &Matrix, opts: &DecomposeOpts) -> Result<SymEigen> {
        if a.rows() != a.cols() || a.rows() < opts.dc_threshold {
            // Malformed inputs also take this arm so error reporting is
            // identical to the historical Jacobi path.
            return sym_eigen(a);
        }
        match sym_eigen_dc(a) {
            Ok(e) if e.orthogonality_drift() <= opts.drift_tol => Ok(e),
            // Drift out of bounds or a secular solve that failed to
            // bracket: Jacobi is the verification/fallback rung.
            _ => sym_eigen(a),
        }
    }
}

/// Symmetric eigendecomposition via tridiagonal divide-and-conquer.
///
/// Same contract as [`sym_eigen`]: descending eigenvalues, orthonormal
/// eigenvector columns. Prefer [`SymEigen::decompose`], which adds the
/// size dispatch and the drift-probed Jacobi fallback.
pub fn sym_eigen_dc(a: &Matrix) -> Result<SymEigen> {
    let t = crate::tridiag::tridiagonalize(a)?;
    let n = t.diag.len();
    if n == 0 {
        return Ok(SymEigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let (vals_asc, qt) = dc_tridiag(&t.diag, &t.off)?;
    // Back-transform to the original basis — one cache-tiled n×n product
    // — and flip to the descending order of [`SymEigen`].
    let full = t.q.matmul(&qt);
    let values: Vec<f64> = vals_asc.iter().rev().copied().collect();
    let mut vectors = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            vectors[(i, j)] = full[(i, n - 1 - j)];
        }
    }
    Ok(SymEigen { values, vectors })
}

/// Recursive eigendecomposition of the tridiagonal `(diag, off)`: returns
/// ascending eigenvalues and the orthogonal eigenvector columns.
fn dc_tridiag(diag: &[f64], off: &[f64]) -> Result<(Vec<f64>, Matrix)> {
    let n = diag.len();
    debug_assert_eq!(off.len(), n.saturating_sub(1));
    if n <= DC_LEAF {
        // Leaf: dense Jacobi on the tridiagonal, flipped to ascending.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = diag[i];
        }
        for k in 0..n.saturating_sub(1) {
            a[(k + 1, k)] = off[k];
            a[(k, k + 1)] = off[k];
        }
        let e = sym_eigen(&a)?;
        let vals: Vec<f64> = e.values.iter().rev().copied().collect();
        let mut q = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                q[(i, j)] = e.vectors[(i, n - 1 - j)];
            }
        }
        return Ok((vals, q));
    }

    // Split T = blockdiag(T₁̂, T₂̂) + β·u·uᵀ on the middle off-diagonal:
    // β couples the last row of the first half to the first row of the
    // second, and gets subtracted from both adjacent diagonal entries.
    let k = n / 2;
    let beta = off[k - 1];
    let mut d1 = diag[..k].to_vec();
    d1[k - 1] -= beta;
    let mut d2 = diag[k..].to_vec();
    d2[0] -= beta;
    let (v1, q1) = dc_tridiag(&d1, &off[..k - 1])?;
    let (v2, q2) = dc_tridiag(&d2, &off[k..])?;

    // In the block eigenbasis the coupling is the rank-1 vector
    // z = (last row of Q₁ ; first row of Q₂). Sort the combined spectrum
    // ascending (stable — deterministic under ties) and permute the
    // block-diagonal basis to match.
    let val = |i: usize| if i < k { v1[i] } else { v2[i - k] };
    let mut ord: Vec<usize> = (0..n).collect();
    ord.sort_by(|&a, &b| val(a).partial_cmp(&val(b)).unwrap());
    let d_sorted: Vec<f64> = ord.iter().map(|&i| val(i)).collect();
    let mut z_sorted: Vec<f64> = ord
        .iter()
        .map(|&i| {
            if i < k {
                q1[(k - 1, i)]
            } else {
                q2[(0, i - k)]
            }
        })
        .collect();
    let mut v = Matrix::zeros(n, n);
    for (col, &i) in ord.iter().enumerate() {
        if i < k {
            for r in 0..k {
                v[(r, col)] = q1[(r, i)];
            }
        } else {
            for r in 0..n - k {
                v[(k + r, col)] = q2[(r, i - k)];
            }
        }
    }

    // β = 0 (decoupled halves) and full deflation both come back as the
    // no-op case: the sorted block spectrum is already the answer.
    match secular::diag_plus_rank1_in_basis(&d_sorted, &mut z_sorted, beta, &mut v)? {
        None => Ok((d_sorted, v)),
        Some(vals) => Ok((vals, v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_spd(n: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let r = Matrix::from_fn(n, n, |_, _| next());
        let mut a = r.gram().scale(0.09);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn dc_matches_jacobi_on_spd() {
        let a = lcg_spd(48, 42);
        let dc = sym_eigen_dc(&a).unwrap();
        let jc = sym_eigen(&a).unwrap();
        let norm = a.frobenius_norm().max(1.0);
        for (x, y) in dc.values.iter().zip(&jc.values) {
            assert!((x - y).abs() < 1e-10 * norm, "{x} vs {y}");
        }
        assert!(dc.reconstruct().max_abs_diff(&a) < 1e-10 * norm);
        assert!(dc.orthogonality_drift() < 1e-12);
    }

    #[test]
    fn decouples_at_zero_beta() {
        // Block-diagonal tridiagonal: the split lands on β = 0 at n/2.
        let n = 64;
        let diag: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut off = vec![0.4; n - 1];
        off[n / 2 - 1] = 0.0;
        let (vals, q) = dc_tridiag(&diag, &off).unwrap();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        // Clustered spectra are the worst case for secular-root
        // orthogonality (no Gu–Eisenstat correction here); the drift
        // probe in `decompose_with` gates acceptance at 1e-8.
        assert!(q.gram().max_abs_diff(&Matrix::identity(n)) < 1e-8);
    }

    #[test]
    fn below_threshold_dispatch_is_jacobi_bitwise() {
        let a = lcg_spd(16, 7);
        let via_dispatch = SymEigen::decompose(&a).unwrap();
        let via_jacobi = sym_eigen(&a).unwrap();
        assert_eq!(via_dispatch.values, via_jacobi.values);
        assert_eq!(
            via_dispatch.vectors.as_slice(),
            via_jacobi.vectors.as_slice()
        );
    }

    #[test]
    fn forced_fallback_is_jacobi_bitwise() {
        let a = lcg_spd(40, 9);
        let opts = DecomposeOpts {
            drift_tol: -1.0, // no D&C result can pass: always fall back
            ..DecomposeOpts::default()
        };
        let via_dispatch = SymEigen::decompose_with(&a, &opts).unwrap();
        let via_jacobi = sym_eigen(&a).unwrap();
        assert_eq!(via_dispatch.values, via_jacobi.values);
        assert_eq!(
            via_dispatch.vectors.as_slice(),
            via_jacobi.vectors.as_slice()
        );
    }

    #[test]
    fn dispatch_rejects_malformed_input() {
        assert!(SymEigen::decompose(&Matrix::zeros(2, 3)).is_err());
        let bad = Matrix::from_fn(40, 40, |_, _| f64::NAN);
        assert!(SymEigen::decompose(&bad).is_err());
        let empty = SymEigen::decompose(&Matrix::zeros(0, 0)).unwrap();
        assert!(empty.values.is_empty());
    }
}
