//! Householder tridiagonalization of a symmetric matrix.
//!
//! `A = Q·T·Qᵀ` with `T` symmetric tridiagonal and `Q` orthogonal — the
//! front half of the divide-and-conquer eigensolver ([`crate::eigen_dc`]).
//! Each step reflects one column's below-subdiagonal entries to zero and
//! applies the similarity transform to the trailing block via the
//! symmetric rank-2 update `A ← A − v·wᵀ − w·vᵀ` (Golub & Van Loan §8.3):
//! `O(n³)` total with a small constant, against Jacobi's
//! `O(n³ · sweeps)`. All inner loops run over contiguous row slices with
//! scratch buffers allocated once up front, so they auto-vectorize and
//! stay allocation-free.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;
use crate::Result;

/// The factorization `A = Q·T·Qᵀ` of a symmetric matrix: `T` is stored as
/// its diagonal and subdiagonal, `Q` is explicit and orthogonal.
#[derive(Debug, Clone)]
pub struct Tridiagonal {
    /// Diagonal of `T` (`n` entries).
    pub diag: Vec<f64>,
    /// Subdiagonal of `T` (`n − 1` entries; `off[k] = T[k+1, k]`).
    pub off: Vec<f64>,
    /// Orthogonal `n × n` basis: `A = Q·T·Qᵀ`.
    pub q: Matrix,
}

impl Tridiagonal {
    /// Reconstruct the dense tridiagonal `T` (mainly for testing).
    pub fn dense_t(&self) -> Matrix {
        let n = self.diag.len();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = self.diag[i];
        }
        for k in 0..n.saturating_sub(1) {
            t[(k + 1, k)] = self.off[k];
            t[(k, k + 1)] = self.off[k];
        }
        t
    }
}

/// Reduce a symmetric matrix to tridiagonal form by Householder
/// reflections, accumulating the reflectors into an explicit orthogonal
/// `Q` (backward accumulation, so early columns — identity by then — are
/// never touched).
///
/// The input is symmetrized internally to iron out round-off asymmetry,
/// like [`crate::sym_eigen`].
///
/// # Errors
///
/// [`LinalgError::NotSquare`] / [`LinalgError::NotFinite`] on malformed
/// input; the reduction itself is direct (no iteration) and cannot fail.
pub fn tridiagonalize(a: &Matrix) -> Result<Tridiagonal> {
    a.require_square()?;
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    let n = a.rows();
    let mut m = a.clone();
    m.symmetrize();
    if n <= 2 {
        // Already tridiagonal.
        return Ok(Tridiagonal {
            diag: (0..n).map(|i| m[(i, i)]).collect(),
            off: (0..n.saturating_sub(1)).map(|k| m[(k + 1, k)]).collect(),
            q: Matrix::identity(n),
        });
    }

    // Row k of `hh` holds reflector k's vector v over columns k+1..n
    // (unnormalized: v = x − α·e₁); `betas[k] = 2/vᵀv`.
    let mut hh = Matrix::zeros(n - 2, n);
    let mut betas = vec![0.0; n - 2];
    let mut off = vec![0.0; n - 1];
    let mut p = vec![0.0; n];
    let mut w = vec![0.0; n];

    for k in 0..n - 2 {
        // x = A[k+1.., k], the column slab to annihilate below the
        // subdiagonal.
        let mut sigma = 0.0;
        for i in k + 1..n {
            let x = m[(i, k)];
            hh[(k, i)] = x;
            if i > k + 1 {
                sigma += x * x;
            }
        }
        let x0 = hh[(k, k + 1)];
        if sigma == 0.0 {
            // Nothing below the subdiagonal: the reflector degenerates to
            // the identity and the column passes through unchanged.
            off[k] = x0;
            hh[(k, k + 1)] = 0.0;
            continue;
        }
        let mu = (x0 * x0 + sigma).sqrt();
        // α = −sign(x₀)·‖x‖ keeps v₀ = x₀ − α free of cancellation.
        let alpha = if x0 >= 0.0 { -mu } else { mu };
        hh[(k, k + 1)] = x0 - alpha;
        // vᵀv = 2(μ² − α·x₀); both terms are non-negative by the sign
        // choice above.
        let beta = 1.0 / (mu * mu - alpha * x0);
        betas[k] = beta;
        off[k] = alpha;

        // Symmetric rank-2 similarity on the trailing block
        // A₂ ← A₂ − v·wᵀ − w·vᵀ with p = β·A₂·v, w = p − (β·vᵀp/2)·v.
        let v = &hh.row(k)[k + 1..];
        for i in k + 1..n {
            p[i] = beta * vector::dot(&m.row(i)[k + 1..], v);
        }
        let kscal = 0.5 * beta * vector::dot(&p[k + 1..n], v);
        for i in k + 1..n {
            w[i] = p[i] - kscal * hh[(k, i)];
        }
        for i in k + 1..n {
            let vi = hh[(k, i)];
            let wi = w[i];
            let row = &mut m.row_mut(i)[k + 1..n];
            for (j, dst) in row.iter_mut().enumerate() {
                let jj = k + 1 + j;
                *dst -= vi * w[jj] + wi * hh[(k, jj)];
            }
        }
    }
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    off[n - 2] = m[(n - 1, n - 2)];

    // Backward accumulation of Q = H₀·H₁·…·H_{n−3}: at step k the
    // current product is the identity outside the trailing block, so
    // each reflector only touches rows/columns k+1..n.
    let mut q = Matrix::identity(n);
    let mut s = vec![0.0; n];
    for k in (0..n - 2).rev() {
        let beta = betas[k];
        if beta == 0.0 {
            continue;
        }
        // s = vᵀ·Q over the active block.
        s[k + 1..n].fill(0.0);
        for i in k + 1..n {
            let vi = hh[(k, i)];
            if vi == 0.0 {
                continue;
            }
            vector::axpy(vi, &q.row(i)[k + 1..], &mut s[k + 1..n]);
        }
        // Q ← Q − β·v·sᵀ, row-wise over contiguous slices.
        for i in k + 1..n {
            let bvi = beta * hh[(k, i)];
            if bvi == 0.0 {
                continue;
            }
            let row = &mut q.row_mut(i)[k + 1..];
            for (dst, &sj) in row.iter_mut().zip(&s[k + 1..n]) {
                *dst -= bvi * sj;
            }
        }
    }

    Ok(Tridiagonal { diag, off, q })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_sym(n: usize, seed: u64, scale: f64) -> Matrix {
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5) * scale
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn reconstructs_the_input() {
        for (n, seed) in [(3usize, 7u64), (8, 11), (17, 13), (40, 17)] {
            let a = lcg_sym(n, seed, 2.0);
            let t = tridiagonalize(&a).unwrap();
            let rebuilt = t.q.matmul(&t.dense_t()).matmul(&t.q.transpose());
            let norm = a.frobenius_norm().max(1.0);
            assert!(
                rebuilt.max_abs_diff(&a) < 1e-12 * norm,
                "n={n}: ‖QTQᵀ − A‖ = {}",
                rebuilt.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn q_is_orthogonal() {
        let a = lcg_sym(23, 5, 3.0);
        let t = tridiagonalize(&a).unwrap();
        let qtq = t.q.gram();
        assert!(qtq.max_abs_diff(&Matrix::identity(23)) < 1e-13);
    }

    #[test]
    fn small_matrices_pass_through() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let t = tridiagonalize(&a).unwrap();
        assert_eq!(t.diag, vec![2.0, 3.0]);
        assert_eq!(t.off, vec![1.0]);
        assert_eq!(t.q, Matrix::identity(2));
        let e = tridiagonalize(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.diag.is_empty() && e.off.is_empty());
    }

    #[test]
    fn already_tridiagonal_input_stays_put() {
        // Zero sub-columns make every reflector degenerate.
        let mut a = Matrix::zeros(6, 6);
        for i in 0..6 {
            a[(i, i)] = i as f64 + 1.0;
        }
        for i in 0..5 {
            a[(i + 1, i)] = 0.5;
            a[(i, i + 1)] = 0.5;
        }
        let t = tridiagonalize(&a).unwrap();
        assert_eq!(t.q, Matrix::identity(6));
        assert_eq!(t.diag, (0..6).map(|i| i as f64 + 1.0).collect::<Vec<_>>());
        assert_eq!(t.off, vec![0.5; 5]);
    }

    #[test]
    fn rejects_rectangular_and_nan() {
        assert!(tridiagonalize(&Matrix::zeros(2, 3)).is_err());
        let bad = Matrix::from_rows(&[vec![f64::NAN]]);
        assert!(tridiagonalize(&bad).is_err());
    }
}
