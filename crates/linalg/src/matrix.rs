//! Row-major dense matrix of `f64`.

use crate::error::LinalgError;
use crate::vector;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Column-tile width of the matmul kernel: 256 `f64`s (2 KiB) of the output
/// row and of each `other` row stay hot while `k` sweeps. Products narrower
/// than one tile run exactly the untiled i-k-j loop.
const MATMUL_J_TILE: usize = 256;

/// A dense, row-major matrix of `f64` values.
///
/// This is the single array type shared by the whole workspace: datasets are
/// `n × d` matrices, covariance/precision matrices are `d × d`, projection
/// direction pairs are `2 × d`, and so on.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Diagonal matrix from the given entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build with a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when `rows == cols`.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {} out of bounds", j);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite row `i` with `values`.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "set_row: length mismatch");
        self.row_mut(i).copy_from_slice(values);
    }

    /// Overwrite column `j` with `values`.
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows, "set_col: length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Extract the sub-matrix given by `row_indices` (all columns).
    pub fn select_rows(&self, row_indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_indices.len(), self.cols);
        for (k, &i) in row_indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Cache-friendly i-k-j loop order with column tiling for wide outputs;
    /// per-element accumulation always runs over `k` ascending, so the
    /// result is bit-identical to the textbook i-j-k triple loop (and to
    /// [`Matrix::matmul_with`] at any thread count).
    ///
    /// # Panics
    /// Panics if inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_rows_into(other, 0, self.rows, out.as_mut_slice());
        out
    }

    /// Matrix product `self * other`, splitting the rows of `self` across
    /// the pool when the product is large enough to amortize dispatch.
    /// Bit-identical to [`Matrix::matmul`]: every output row is computed by
    /// exactly the same kernel, whole rows are never split.
    pub fn matmul_with(&self, other: &Matrix, pool: &sider_par::ThreadPool) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let p = other.cols;
        let flops = self.rows.saturating_mul(self.cols).saturating_mul(p);
        let pool = pool.gated(flops);
        if pool.threads() <= 1 || p == 0 {
            self.matmul_rows_into(other, 0, self.rows, out.as_mut_slice());
            return out;
        }
        let rows_per_chunk = self.rows.div_ceil(pool.threads() * 4).max(1);
        pool.par_chunks_mut(
            out.as_mut_slice(),
            rows_per_chunk * p,
            |chunk_idx, out_chunk| {
                let start = chunk_idx * rows_per_chunk;
                let end = start + out_chunk.len() / p;
                self.matmul_rows_into(other, start, end, out_chunk);
            },
        );
        out
    }

    /// Product of a column subset with another matrix:
    /// `self[:, cols] · other`, where `other` is `cols.len() × p`.
    ///
    /// This is the blocked rank-k basis product of the eigensolver stack
    /// (`V[:, nd] · Q` in the secular merge): it reads the selected
    /// columns in place instead of materializing the `n × m` sub-matrix,
    /// and reuses the [`Matrix::matmul`] column tiling. For every output
    /// element the accumulation runs over `k` ascending, so the result is
    /// bit-identical to `select`-copying the columns and calling
    /// [`Matrix::matmul`].
    ///
    /// # Panics
    /// Panics if `other.rows != cols.len()` or any index is out of range.
    pub fn matmul_select_cols(&self, cols: &[usize], other: &Matrix) -> Matrix {
        assert_eq!(
            cols.len(),
            other.rows,
            "matmul_select_cols: {} selected columns vs {} rows",
            cols.len(),
            other.rows
        );
        assert!(
            cols.iter().all(|&c| c < self.cols),
            "matmul_select_cols: column index out of range"
        );
        let p = other.cols;
        let mut out = Matrix::zeros(self.rows, p);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for jb in (0..p).step_by(MATMUL_J_TILE) {
                let je = (jb + MATMUL_J_TILE).min(p);
                for (k, &c) in cols.iter().enumerate() {
                    let a = a_row[c];
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &other.row(k)[jb..je];
                    for (o, &b) in out_row[jb..je].iter_mut().zip(orow) {
                        *o += a * b;
                    }
                }
            }
        }
        out
    }

    /// Kernel shared by the serial and parallel products: rows
    /// `row_start..row_end` of `self * other` into `out` (row-major,
    /// `(row_end − row_start) × other.cols`). The `j` loop is tiled so the
    /// active slices of `out` and `other` stay cache-resident when the
    /// output is wide; for every output element the `k` accumulation order
    /// is unchanged (ascending), keeping all paths bit-identical.
    fn matmul_rows_into(&self, other: &Matrix, row_start: usize, row_end: usize, out: &mut [f64]) {
        let p = other.cols;
        debug_assert_eq!(out.len(), (row_end - row_start) * p);
        for i in row_start..row_end {
            let a_row = self.row(i);
            let out_row = &mut out[(i - row_start) * p..(i - row_start + 1) * p];
            for jb in (0..p).step_by(MATMUL_J_TILE) {
                let je = (jb + MATMUL_J_TILE).min(p);
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &other.row(k)[jb..je];
                    for (o, &b) in out_row[jb..je].iter_mut().zip(orow) {
                        *o += a * b;
                    }
                }
            }
        }
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        (0..self.rows)
            .map(|i| vector::dot(self.row(i), x))
            .collect()
    }

    /// Matrix–vector product `self * x` written into a caller-provided
    /// buffer — the allocation-free kernel behind per-row sampling and
    /// whitening.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into: x length mismatch");
        assert_eq!(out.len(), self.rows, "matvec_into: out length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = vector::dot(self.row(i), x);
        }
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tr_matvec: length mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            vector::axpy(x[i], self.row(i), &mut out);
        }
        out
    }

    /// `selfᵀ * self` (Gram matrix), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..d {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scale all entries by `alpha` into a new matrix.
    pub fn scale(&self, alpha: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place `self += alpha * other`.
    pub fn add_assign_scaled(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign_scaled: shape");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Rank-1 update `self += alpha * u vᵀ`.
    pub fn add_outer(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows, "add_outer: u length");
        assert_eq!(v.len(), self.cols, "add_outer: v length");
        for i in 0..self.rows {
            let au = alpha * u[i];
            if au == 0.0 {
                continue;
            }
            vector::axpy(au, v, self.row_mut(i));
        }
    }

    /// Quadratic form `xᵀ self x` for a square matrix.
    pub fn quad_form(&self, x: &[f64]) -> f64 {
        assert!(self.is_square(), "quad_form: matrix not square");
        assert_eq!(x.len(), self.rows, "quad_form: length mismatch");
        let mut acc = 0.0;
        for i in 0..self.rows {
            acc += x[i] * vector::dot(self.row(i), x);
        }
        acc
    }

    /// Force exact symmetry: `self = (self + selfᵀ)/2`.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize: matrix not square");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// Maximum absolute deviation from symmetry.
    pub fn asymmetry(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// True if square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.asymmetry() <= tol
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace: matrix not square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        vector::max_abs(&self.data)
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        vector::is_finite(&self.data)
    }

    /// Column means as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.cols];
        if self.rows == 0 {
            return m;
        }
        for i in 0..self.rows {
            vector::axpy(1.0, self.row(i), &mut m);
        }
        vector::scale(&mut m, 1.0 / self.rows as f64);
        m
    }

    /// Subtract `center` from every row into a new matrix.
    pub fn center_rows(&self, center: &[f64]) -> Matrix {
        assert_eq!(center.len(), self.cols, "center_rows: length mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            vector::axpy(-1.0, center, out.row_mut(i));
        }
        out
    }

    /// Apply `f` to every entry into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Validate that the matrix is square, returning a typed error otherwise.
    pub fn require_square(&self) -> Result<(), LinalgError> {
        if self.is_square() {
            Ok(())
        } else {
            Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            })
        }
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (3, 2));
        assert!(!m.is_square());
        assert_eq!(m[(2, 1)], 6.0);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3.trace(), 3.0);
        assert_eq!(i3[(0, 1)], 0.0);
        assert_eq!(i3[(1, 1)], 1.0);
    }

    #[test]
    fn from_diag_places_entries() {
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(0, 2)], 5.0);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let m = sample();
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(3).matmul(&m), m);
    }

    /// The pre-tiling implementation: per-element indexed i-j-k triple
    /// loop, kept as the reference the optimized kernel must reproduce
    /// exactly (same ascending-`k` accumulation order ⇒ same bits).
    fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    #[test]
    fn tiled_matmul_matches_reference_exactly_on_random_matrices() {
        // Shapes straddling the j-tile boundary and the parallel threshold.
        for (n, k, p, seed) in [
            (7, 5, 3, 1u64),
            (33, 17, 300, 2), // wide output: tiling active
            (64, 64, 64, 3),
            (5, 300, 513, 4), // deep inner dimension + 2 tiles and a tail
        ] {
            let a = pseudo_random_matrix(n, k, seed);
            let b = pseudo_random_matrix(k, p, seed ^ 0xabcdef);
            let expected = matmul_reference(&a, &b);
            let got = a.matmul(&b);
            assert_eq!(got, expected, "{n}x{k}x{p}: tiled kernel diverged");
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_at_any_thread_count() {
        let a = pseudo_random_matrix(120, 40, 7);
        let b = pseudo_random_matrix(40, 96, 8);
        let serial = a.matmul(&b);
        for threads in [1usize, 2, 4] {
            let pool = sider_par::ThreadPool::new(threads);
            assert_eq!(a.matmul_with(&b, &pool), serial, "{threads} threads");
        }
    }

    #[test]
    fn matmul_select_cols_matches_select_copy_then_matmul() {
        // Column subset straddling the j-tile boundary, unsorted and with
        // gaps: the fused kernel must reproduce copy-then-multiply bit
        // for bit (same ascending-k accumulation per output element).
        let a = pseudo_random_matrix(37, 50, 11);
        let cols: Vec<usize> = vec![48, 0, 7, 33, 21, 2, 45, 19];
        let b = pseudo_random_matrix(cols.len(), 300, 12);
        let mut selected = Matrix::zeros(a.rows(), cols.len());
        for i in 0..a.rows() {
            for (j, &c) in cols.iter().enumerate() {
                selected[(i, j)] = a[(i, c)];
            }
        }
        let expected = selected.matmul(&b);
        let got = a.matmul_select_cols(&cols, &b);
        assert_eq!(got, expected, "fused column-select matmul diverged");
        // Empty selection produces the zero-shaped product.
        assert_eq!(
            a.matmul_select_cols(&[], &Matrix::zeros(0, 4)).shape(),
            (37, 4)
        );
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let m = sample();
        let x = [1.5, -2.0];
        let mut out = [0.0; 3];
        m.matvec_into(&x, &mut out);
        assert_eq!(out.to_vec(), m.matvec(&x));
    }

    #[test]
    fn matvec_and_tr_matvec_agree_with_transpose() {
        let m = sample();
        let x = vec![1.0, -1.0];
        let y = vec![1.0, 0.0, 2.0];
        assert_eq!(m.matvec(&x), vec![-1.0, -1.0, -1.0]);
        assert_eq!(m.tr_matvec(&y), m.transpose().matvec(&y));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = sample();
        let g = m.gram();
        let g2 = m.transpose().matmul(&m);
        assert!(g.max_abs_diff(&g2) < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[vec![4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[vec![2.0, 3.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[vec![2.0, 4.0]]));
        let mut c = a.clone();
        c.add_assign_scaled(10.0, &b);
        assert_eq!(c, Matrix::from_rows(&[vec![31.0, 52.0]]));
    }

    #[test]
    fn add_outer_rank1() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(m, Matrix::from_rows(&[vec![8.0, 10.0], vec![24.0, 30.0]]));
    }

    #[test]
    fn quad_form_matches_explicit() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = [1.0, 2.0];
        // xᵀMx = 2 + 2 + 2 + 12 = 18
        assert_eq!(m.quad_form(&x), 18.0);
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 1.0]]);
        assert_eq!(m.asymmetry(), 2.0);
        assert!(!m.is_symmetric(1e-12));
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn row_and_col_access() {
        let mut m = sample();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
        m.set_row(0, &[9.0, 9.0]);
        assert_eq!(m.row(0), &[9.0, 9.0]);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn swap_rows_exchanges_contents() {
        let mut m = sample();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn select_rows_picks_subset() {
        let m = sample();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[vec![5.0, 6.0], vec![1.0, 2.0]]));
    }

    #[test]
    fn col_means_and_centering() {
        let m = sample();
        let means = m.col_means();
        assert_eq!(means, vec![3.0, 4.0]);
        let c = m.center_rows(&means);
        assert_eq!(c.col_means(), vec![0.0, 0.0]);
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.is_finite());
        let bad = Matrix::from_rows(&[vec![f64::NAN]]);
        assert!(!bad.is_finite());
    }

    #[test]
    fn map_applies_function() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0]]);
        assert_eq!(m.map(f64::abs), Matrix::from_rows(&[vec![1.0, 2.0]]));
    }

    #[test]
    fn require_square_errors_on_rectangular() {
        assert!(sample().require_square().is_err());
        assert!(Matrix::identity(2).require_square().is_ok());
    }

    #[test]
    fn debug_format_is_bounded() {
        let big = Matrix::zeros(20, 20);
        let s = format!("{:?}", big);
        assert!(s.contains("Matrix 20x20"));
        assert!(s.len() < 4000);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
