//! Sherman–Morrison rank-1 updates.
//!
//! The MaxEnt optimizer adds `λ·w·wᵀ` to a precision matrix at every
//! quadratic-constraint update (paper Eq. 10 discussion). Keeping the dual
//! covariance in sync would cost `O(d³)` with an explicit inverse; the
//! Sherman–Morrison identity
//!
//! `(P + λwwᵀ)⁻¹ = Σ − λ·(Σw)(Σw)ᵀ / (1 + λ·wᵀΣw)`
//!
//! does it in `O(d²)` — the paper's headline speed-up.

use crate::matrix::Matrix;
use crate::vector;

/// Result of preparing a rank-1 update of `Σ = P⁻¹` for direction `w`.
#[derive(Debug, Clone)]
pub struct Rank1 {
    /// `g = Σ·w`.
    pub g: Vec<f64>,
    /// `c = wᵀ·Σ·w = wᵀg` (non-negative for PSD Σ).
    pub c: f64,
}

/// Compute `g = Σw` and `c = wᵀΣw` for a symmetric `Σ`.
pub fn prepare(sigma: &Matrix, w: &[f64]) -> Rank1 {
    let g = sigma.matvec(w);
    let c = vector::dot(w, &g);
    Rank1 { g, c }
}

/// Smallest admissible `λ` keeping `1 + λc > 0` (with a safety margin), i.e.
/// keeping the updated precision positive definite along `w`.
pub fn lambda_lower_bound(c: f64) -> f64 {
    if c <= 0.0 {
        f64::NEG_INFINITY
    } else {
        -1.0 / c * (1.0 - 1e-9)
    }
}

/// Apply the Sherman–Morrison update in place:
/// `Σ ← Σ − λ·g·gᵀ/(1 + λc)` where `g, c` come from [`prepare`].
///
/// # Panics
/// Panics (in debug builds) if `1 + λc ≤ 0`, which would make the updated
/// matrix indefinite.
pub fn apply(sigma: &mut Matrix, r: &Rank1, lambda: f64) {
    let denom = 1.0 + lambda * r.c;
    debug_assert!(
        denom > 0.0,
        "sherman-morrison: 1 + λc = {denom} not positive"
    );
    if lambda == 0.0 {
        return;
    }
    sigma.add_outer(-lambda / denom, &r.g, &r.g);
    sigma.symmetrize();
}

/// Convenience: updated covariance as a new matrix.
pub fn updated(sigma: &Matrix, w: &[f64], lambda: f64) -> Matrix {
    let r = prepare(sigma, w);
    let mut out = sigma.clone();
    apply(&mut out, &r, lambda);
    out
}

/// Rank-1 update of the precision itself: `P ← P + λ·w·wᵀ`.
pub fn precision_update(prec: &mut Matrix, w: &[f64], lambda: f64) {
    prec.add_outer(lambda, w, w);
    prec.symmetrize();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            vec![2.0, 0.3, 0.1],
            vec![0.3, 1.5, -0.2],
            vec![0.1, -0.2, 1.0],
        ])
    }

    #[test]
    fn matches_direct_inverse() {
        // Σ = P⁻¹; update P by λwwᵀ, compare Woodbury Σ with direct inverse.
        let p = spd3();
        let sigma = lu::inverse(&p).unwrap();
        let w = vec![0.5, -1.0, 2.0];
        let lambda = 0.7;

        let wb = updated(&sigma, &w, lambda);

        let mut p2 = p.clone();
        precision_update(&mut p2, &w, lambda);
        let direct = lu::inverse(&p2).unwrap();

        assert!(wb.max_abs_diff(&direct) < 1e-12);
    }

    #[test]
    fn negative_lambda_within_bound_ok() {
        let p = spd3();
        let sigma = lu::inverse(&p).unwrap();
        let w = vec![1.0, 0.0, 0.0];
        let r = prepare(&sigma, &w);
        let lo = lambda_lower_bound(r.c);
        let lambda = lo * 0.5; // safely inside the admissible range
        let wb = updated(&sigma, &w, lambda);
        let mut p2 = p.clone();
        precision_update(&mut p2, &w, lambda);
        let direct = lu::inverse(&p2).unwrap();
        assert!(wb.max_abs_diff(&direct) < 1e-10);
    }

    #[test]
    fn zero_lambda_is_identity_operation() {
        let sigma = spd3();
        let out = updated(&sigma, &[1.0, 1.0, 1.0], 0.0);
        assert!(out.max_abs_diff(&sigma) < 1e-15);
    }

    #[test]
    fn prepare_c_is_quadratic_form() {
        let sigma = spd3();
        let w = vec![1.0, 2.0, -1.0];
        let r = prepare(&sigma, &w);
        assert!((r.c - sigma.quad_form(&w)).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_semantics() {
        assert_eq!(lambda_lower_bound(0.0), f64::NEG_INFINITY);
        let lb = lambda_lower_bound(2.0);
        assert!(lb > -0.5 && lb < -0.49);
    }

    #[test]
    fn repeated_updates_stay_consistent() {
        // Chain of 5 rank-1 updates tracked by Woodbury must equal the
        // direct inverse of the accumulated precision.
        let p0 = Matrix::identity(3);
        let mut sigma = Matrix::identity(3);
        let mut p = p0.clone();
        let ws = [
            vec![1.0, 0.0, 0.0],
            vec![0.3, 0.7, 0.0],
            vec![0.0, -0.5, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![-0.2, 0.1, 0.4],
        ];
        for (k, w) in ws.iter().enumerate() {
            let lambda = 0.2 * (k as f64 + 1.0);
            let r = prepare(&sigma, w);
            apply(&mut sigma, &r, lambda);
            precision_update(&mut p, w, lambda);
        }
        let direct = lu::inverse(&p).unwrap();
        assert!(sigma.max_abs_diff(&direct) < 1e-10);
    }

    #[test]
    fn large_lambda_drives_variance_to_zero() {
        let mut sigma = Matrix::identity(2);
        let w = vec![1.0, 0.0];
        let r = prepare(&sigma, &w);
        apply(&mut sigma, &r, 1e12);
        assert!(sigma[(0, 0)] < 1e-10);
        assert!((sigma[(1, 1)] - 1.0).abs() < 1e-12);
    }
}
