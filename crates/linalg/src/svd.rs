//! Singular value decomposition via one-sided Jacobi (Hestenes).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;
use crate::Result;

/// Thin SVD `A = U·diag(s)·Vᵀ` of an `m × n` matrix.
///
/// With `r = min(m, n)`: `u` is `m × r`, `s` has length `r` (descending,
/// non-negative), `vt` is `r × n`. For `m < n` we factorize the transpose
/// and swap factors.
///
/// SIDER uses the SVD to derive the eigenvector directions of a marked
/// cluster ("cluster constraint", paper §II-A): the right singular vectors
/// of the centered cluster points are exactly the principal directions.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns), `m × min(m, n)`.
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (rows), `min(m, n) × n`.
    pub vt: Matrix,
}

const MAX_SWEEPS: usize = 60;

/// Compute the thin SVD of `a`.
pub fn svd(a: &Matrix) -> Result<Svd> {
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        let r = m.min(n);
        return Ok(Svd {
            u: Matrix::zeros(m, r),
            s: vec![0.0; r],
            vt: Matrix::zeros(r, n),
        });
    }
    if m < n {
        // SVD of Aᵀ = U s Vᵀ  ⇒  A = V s Uᵀ.
        let t = svd(&a.transpose())?;
        return Ok(Svd {
            u: t.vt.transpose(),
            s: t.s,
            vt: t.u.transpose(),
        });
    }

    // One-sided Jacobi: rotate column pairs of U (initialized to A) until
    // all columns are mutually orthogonal; accumulate rotations in V.
    let mut u = a.clone();
    let mut v = Matrix::identity(n);
    let eps = 1e-15;

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                rotated = true;
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values are the column norms of U; normalize columns.
    let mut s: Vec<f64> = (0..n).map(|j| vector::norm2(&u.col(j))).collect();
    for j in 0..n {
        if s[j] > 1e-300 {
            let inv = 1.0 / s[j];
            for i in 0..m {
                u[(i, j)] *= inv;
            }
        } else {
            s[j] = 0.0;
            // Leave the (zero) column; it contributes nothing to A.
        }
    }

    // Sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| s[b].partial_cmp(&s[a]).unwrap());
    let s_sorted: Vec<f64> = order.iter().map(|&j| s[j]).collect();
    let mut u_sorted = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..m {
            u_sorted[(i, new_j)] = u[(i, old_j)];
        }
        for i in 0..n {
            vt[(new_j, i)] = v[(i, old_j)];
        }
    }
    Ok(Svd {
        u: u_sorted,
        s: s_sorted,
        vt,
    })
}

impl Svd {
    /// Reconstruct `U·diag(s)·Vᵀ` (mainly for testing).
    pub fn reconstruct(&self) -> Matrix {
        let (m, n) = self.u.shape();
        let mut scaled = self.u.clone();
        for j in 0..n {
            for i in 0..m {
                scaled[(i, j)] *= self.s[j];
            }
        }
        scaled.matmul(&self.vt)
    }

    /// Numerical rank at relative tolerance `rtol`.
    pub fn rank(&self, rtol: f64) -> usize {
        let smax = self.s.first().copied().unwrap_or(0.0);
        self.s.iter().filter(|&&v| v > rtol * smax).count()
    }

    /// Right singular vector `k` as an owned vector of length `n`.
    pub fn right_vector(&self, k: usize) -> Vec<f64> {
        self.vt.row(k).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 2.0]);
        let d = svd(&a).unwrap();
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_tall() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let d = svd(&a).unwrap();
        assert!(d.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn reconstruction_wide() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let d = svd(&a).unwrap();
        assert!(d.reconstruct().max_abs_diff(&a) < 1e-12);
        assert_eq!(d.u.shape(), (2, 2));
        assert_eq!(d.s.len(), 2);
        assert_eq!(d.vt.shape(), (2, 3));
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = Matrix::from_rows(&[
            vec![0.5, -1.0, 2.0],
            vec![1.5, 0.3, -0.7],
            vec![-0.2, 0.9, 0.1],
            vec![1.0, 1.0, 1.0],
        ]);
        let d = svd(&a).unwrap();
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(d.s.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = Matrix::from_rows(&[vec![2.0, 0.1], vec![-0.3, 1.0], vec![0.7, 0.7]]);
        let d = svd(&a).unwrap();
        assert!(d.u.gram().max_abs_diff(&Matrix::identity(2)) < 1e-12);
        let vvt = d.vt.matmul(&d.vt.transpose());
        assert!(vvt.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn rank_one_matrix_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let d = svd(&a).unwrap();
        assert_eq!(d.rank(1e-10), 1);
        assert!(d.s[1] < 1e-10);
    }

    #[test]
    fn zero_matrix_all_zero_singular_values() {
        let d = svd(&Matrix::zeros(3, 2)).unwrap();
        assert_eq!(d.s, vec![0.0, 0.0]);
        assert_eq!(d.rank(1e-12), 0);
    }

    #[test]
    fn singular_values_match_eigen_of_gram() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.5, 0.2],
            vec![-0.4, 1.2, 0.9],
            vec![0.3, -0.8, 1.1],
            vec![0.6, 0.1, -0.5],
        ]);
        let d = svd(&a).unwrap();
        let e = crate::eigen::sym_eigen(&a.gram()).unwrap();
        for (sv, ev) in d.s.iter().zip(&e.values) {
            assert!((sv * sv - ev).abs() < 1e-10, "s²={} vs λ={}", sv * sv, ev);
        }
    }

    #[test]
    fn right_vectors_are_principal_directions() {
        // Points spread along (1,1): top right singular vector ∝ (1,1)/√2.
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![2.0, 2.1],
            vec![-1.0, -0.9],
            vec![-2.0, -2.1],
        ]);
        let d = svd(&a).unwrap();
        let v0 = d.right_vector(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((v0[0] - v0[1]).abs() < 0.1 || (v0[0] + v0[1]).abs() < 0.1);
    }

    #[test]
    fn empty_matrix_ok() {
        let d = svd(&Matrix::zeros(0, 0)).unwrap();
        assert!(d.s.is_empty());
    }

    #[test]
    fn rejects_non_finite() {
        let a = Matrix::from_rows(&[vec![f64::NAN]]);
        assert!(svd(&a).is_err());
    }
}
