//! Dense linear algebra substrate for the `sider-rs` workspace.
//!
//! The SIDER algorithm (Puolamäki et al., ICDE 2018) needs a small but
//! carefully chosen set of dense routines on symmetric positive
//! (semi-)definite matrices of moderate dimension (`d ≤ a few hundred`):
//!
//! * [`Matrix`] — a row-major dense matrix of `f64`.
//! * [`Lu`] — LU decomposition with partial pivoting (solve / inverse / det).
//! * [`Cholesky`] — for sampling and solving with covariance matrices.
//! * [`Qr`] — Householder QR (least squares, orthonormal bases).
//! * [`SymEigen`] — symmetric eigendecomposition, the workhorse behind
//!   whitening (Eq. 14 of the paper) and PCA. [`SymEigen::decompose`]
//!   dispatches between tridiagonal divide-and-conquer ([`tridiag`] +
//!   [`eigen_dc`], sharing the secular kernel with
//!   [`SymEigen::rank1_update`]) and the cyclic Jacobi small-`d` /
//!   verification path ([`sym_eigen`]).
//! * [`Svd`] — singular value decomposition via one-sided Jacobi, used to
//!   derive cluster-constraint directions (paper §II-A).
//! * [`woodbury`] — Sherman–Morrison rank-1 covariance updates, the key
//!   O(d²) trick that makes the MaxEnt optimizer fast (paper §II-A).
//! * [`sqrtm`] — symmetric square roots, used by the whitening transform.
//!
//! Everything is implemented from scratch: no BLAS/LAPACK, no external
//! linear-algebra crates. Numerical tolerances follow standard choices
//! (Jacobi sweeps until off-diagonal Frobenius mass is below `1e-12`
//! relative to the matrix norm).

// Indexed `for` loops are the dominant idiom in this crate's numeric
// kernels, where several arrays are indexed in lockstep and the index is
// part of the math; iterator rewrites obscure it.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod eigen;
pub mod eigen_dc;
pub mod eigen_update;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod qr;
mod secular;
pub mod sqrtm;
pub mod svd;
pub mod tridiag;
pub mod vector;
pub mod woodbury;

pub use cholesky::Cholesky;
pub use eigen::{sym_eigen, SymEigen};
pub use eigen_dc::{sym_eigen_dc, DecomposeOpts};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use sqrtm::{sym_inv_sqrt, sym_sqrt};
pub use svd::{svd, Svd};
pub use tridiag::{tridiagonalize, Tridiagonal};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
