//! Incremental maintenance of a symmetric eigendecomposition under
//! rank-1 perturbations (Golub 1973; Bunch–Nielsen–Sorensen 1978).
//!
//! Given `A = V·diag(d)·Vᵀ` and a rank-1 change `A' = A + ρ·w·wᵀ`, the
//! eigenproblem of `A'` reduces — in the basis `V`, with `z = Vᵀw` — to
//! the diagonal-plus-rank-1 problem `D + ρ·z·zᵀ`, whose eigenvalues are
//! the roots of the *secular equation*
//!
//! `f(λ) = 1 + ρ · Σᵢ zᵢ² / (dᵢ − λ) = 0`
//!
//! with one root strictly interlaced in each gap of the (deflated)
//! spectrum. Each update therefore costs `O(d²)` — one basis rotation
//! `Vᵀw`, `m ≤ d` scalar root solves, and one `d×m·m×m` basis update —
//! instead of the `O(d³·sweeps)` of a fresh Jacobi decomposition. That is
//! what makes the warm refresh path of the interactive loop scale with
//! the *rank of the change* rather than with `d³`.
//!
//! The deflation / secular-Newton machinery itself lives in the
//! private `secular` module, shared verbatim with the merge step of the
//! divide-and-conquer solver ([`crate::eigen_dc`]); this module only
//! rotates the perturbation into the eigenbasis and maps the solution
//! back. Chained updates accumulate round-off in the eigenbasis; callers
//! are expected to monitor [`SymEigen::orthogonality_drift`] and fall
//! back to a full decomposition when it degrades (the `sider_maxent`
//! refresh path does exactly that).

use crate::eigen::SymEigen;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::secular;
use crate::vector;
use crate::Result;

impl SymEigen {
    /// Update the decomposition in place so it represents `A + ρ·w·wᵀ`,
    /// where `A = V·diag(λ)·Vᵀ` is the matrix currently represented.
    ///
    /// Cost is `O(d·m²)` with `m ≤ d` the number of non-deflated
    /// components; the descending eigenvalue order of [`SymEigen`] is
    /// preserved. `ρ = 0` (or `w` in the kernel of the update, including
    /// `w = 0`) is an exact no-op.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `w` has the wrong length,
    /// [`LinalgError::NotFinite`] for non-finite inputs, and
    /// [`LinalgError::ConvergenceFailure`] if a secular root solve fails
    /// to bracket (callers should treat that as "recompute from scratch").
    pub fn rank1_update(&mut self, w: &[f64], rho: f64) -> Result<()> {
        let n = self.values.len();
        if w.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                got: (w.len(), 1),
            });
        }
        if !rho.is_finite() || !vector::is_finite(w) || !vector::is_finite(&self.values) {
            return Err(LinalgError::NotFinite);
        }
        if n == 0 || rho == 0.0 {
            return Ok(());
        }

        // The update in the current eigenbasis: z = Vᵀw.
        let z_desc = self.vectors.tr_matvec(w);
        if !vector::is_finite(&z_desc) {
            return Err(LinalgError::NotFinite);
        }
        let znorm2 = vector::norm2_sq(&z_desc);
        if znorm2 == 0.0 {
            return Ok(());
        }

        // Hand the problem to the shared secular kernel in ascending
        // eigenvalue order (secular intervals read left-to-right);
        // `ord[k]` is the original column index.
        let mut ord: Vec<usize> = (0..n).collect();
        ord.sort_by(|&a, &b| self.values[a].partial_cmp(&self.values[b]).unwrap());
        let d: Vec<f64> = ord.iter().map(|&i| self.values[i]).collect();
        let mut z: Vec<f64> = ord.iter().map(|&i| z_desc[i]).collect();
        let mut v = Matrix::zeros(n, n);
        for (k, &col) in ord.iter().enumerate() {
            for i in 0..n {
                v[(i, k)] = self.vectors[(i, col)];
            }
        }

        match secular::diag_plus_rank1_in_basis(&d, &mut z, rho, &mut v)? {
            // Fully deflated: every eigenpair untouched.
            None => Ok(()),
            Some(vals) => {
                // Back to the descending order of [`SymEigen`].
                self.values = vals.iter().rev().copied().collect();
                let mut vectors = Matrix::zeros(n, n);
                for k in 0..n {
                    for i in 0..n {
                        vectors[(i, k)] = v[(i, n - 1 - k)];
                    }
                }
                self.vectors = vectors;
                Ok(())
            }
        }
    }

    /// `‖VᵀV − I‖_max` — how far the eigenbasis has drifted from
    /// orthonormality. Exact decompositions sit at round-off (`~1e−15`);
    /// chained [`SymEigen::rank1_update`] calls grow it slowly, and
    /// callers maintaining a long-lived decomposition should recompute
    /// from scratch once it crosses their tolerance.
    pub fn orthogonality_drift(&self) -> f64 {
        let n = self.values.len();
        if n == 0 {
            return 0.0;
        }
        self.vectors.gram().max_abs_diff(&Matrix::identity(n))
    }
}
