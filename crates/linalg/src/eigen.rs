//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by **descending** eigenvalue; `vectors` holds the
/// eigenvectors as columns (so `vectors.col(k)` pairs with `values[k]`).
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns.
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before reporting a convergence failure.
const MAX_SWEEPS: usize = 64;

/// Symmetric eigendecomposition of `a` via cyclic Jacobi rotations.
///
/// `a` must be square and symmetric up to a small tolerance (we symmetrize
/// internally to iron out round-off asymmetry). Jacobi is slower than
/// tridiagonal QL for large `d` but is simple, extremely robust, and more
/// than fast enough for the `d ≤ 128` whitening/PCA workloads of the paper.
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen> {
    a.require_square()?;
    if !a.is_finite() {
        return Err(LinalgError::NotFinite);
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymEigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Matrix::identity(n);

    let norm = m.frobenius_norm().max(1e-300);
    let tol = 1e-14 * norm;
    // Pivots below this cannot move the off-diagonal norm anywhere near
    // `tol` even if every element sits at the threshold
    // (`√(n(n−1)) · rot_tol ≤ tol/100`), so rotating them is pure waste —
    // skipping turns late sweeps from O(n³) rotation work into O(n²)
    // comparisons. The margin of 100 keeps the perturbation relative to
    // the unthresholded iteration two orders below the convergence
    // tolerance itself.
    let rot_tol = (tol / (100.0 * n as f64)).max(1e-300);

    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += 2.0 * m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            return Ok(sorted(m, v));
        }
        let mut rotations = 0usize;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= rot_tol {
                    continue;
                }
                rotations += 1;
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    if k != p && k != q {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(p, k)] = m[(k, p)];
                        m[(k, q)] = s * mkp + c * mkq;
                        m[(q, k)] = m[(k, q)];
                    }
                }
                m[(p, p)] = app - t * apq;
                m[(q, q)] = aqq + t * apq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;

                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
        // A sweep that skipped every pivot proves all off-diagonal
        // elements are ≤ rot_tol, hence the off-norm is well under `tol`:
        // converged — return without paying another full off-norm pass.
        if rotations == 0 {
            return Ok(sorted(m, v));
        }
    }
    // One final tolerance check before giving up.
    let mut off = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            off += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    if off.sqrt() <= tol * 1e3 {
        return Ok(sorted(m, v));
    }
    Err(LinalgError::SweepBudgetExhausted {
        sweeps: MAX_SWEEPS,
        size: n,
        off_mass: off.sqrt(),
        tol,
    })
}

fn sorted(m: Matrix, v: Matrix) -> SymEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_j)] = v[(i, old_j)];
        }
    }
    SymEigen { values, vectors }
}

impl SymEigen {
    /// Reconstruct `V·diag(λ)·Vᵀ` (mainly for testing).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let col = self.vectors.col(k);
            out.add_outer(self.values[k], &col, &col);
        }
        out
    }

    /// Apply `V·f(diag(λ))·Vᵀ` for a scalar spectral function `f`.
    pub fn spectral_map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.values.len();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let col = self.vectors.col(k);
            out.add_outer(f(self.values[k]), &col, &col);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let e = sym_eigen(&a).unwrap();
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn two_by_two_hand_computed() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v0[0] - v0[1]).abs() < 1e-12); // same sign components
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -0.5, 0.2],
            vec![1.0, 3.0, 0.7, -0.1],
            vec![-0.5, 0.7, 2.0, 0.4],
            vec![0.2, -0.1, 0.4, 1.5],
        ]);
        let e = sym_eigen(&a).unwrap();
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, 0.5, 0.1],
            vec![0.5, 1.0, -0.3],
            vec![0.1, -0.3, 0.7],
        ]);
        let e = sym_eigen(&a).unwrap();
        let vtv = e.vectors.gram();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[vec![1.0, 0.2], vec![0.2, 0.5]]);
        let e = sym_eigen(&a).unwrap();
        assert!((a.trace() - e.values.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn semidefinite_matrix_has_zero_eigenvalue() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 2.0).abs() < 1e-12);
        assert!(e.values[1].abs() < 1e-12);
    }

    #[test]
    fn negative_eigenvalues_handled() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_untouched() {
        let e = sym_eigen(&Matrix::identity(5)).unwrap();
        assert!(e.values.iter().all(|&v| (v - 1.0).abs() < 1e-14));
    }

    #[test]
    fn empty_matrix_ok() {
        let e = sym_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn spectral_map_computes_inverse() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let e = sym_eigen(&a).unwrap();
        let inv = e.spectral_map(|l| 1.0 / l);
        assert!(a.matmul(&inv).max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn larger_random_like_matrix_converges() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 24;
        let mut a = Matrix::zeros(n, n);
        let mut s = 123456789u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = sym_eigen(&a).unwrap();
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn rejects_rectangular_and_nan() {
        assert!(sym_eigen(&Matrix::zeros(2, 3)).is_err());
        let bad = Matrix::from_rows(&[vec![f64::NAN]]);
        assert!(sym_eigen(&bad).is_err());
    }

    /// The pre-early-exit cyclic Jacobi (every pivot above 1e-300 rotated,
    /// convergence checked only at sweep boundaries) — the reference the
    /// thresholded version must agree with.
    fn sym_eigen_reference(a: &Matrix) -> SymEigen {
        let n = a.rows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);
        let norm = m.frobenius_norm().max(1e-300);
        let tol = 1e-14 * norm;
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += 2.0 * m[(i, j)] * m[(i, j)];
                }
            }
            if off.sqrt() <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        if k != p && k != q {
                            let mkp = m[(k, p)];
                            let mkq = m[(k, q)];
                            m[(k, p)] = c * mkp - s * mkq;
                            m[(p, k)] = m[(k, p)];
                            m[(k, q)] = s * mkp + c * mkq;
                            m[(q, k)] = m[(k, q)];
                        }
                    }
                    m[(p, p)] = app - t * apq;
                    m[(q, q)] = aqq + t * apq;
                    m[(p, q)] = 0.0;
                    m[(q, p)] = 0.0;
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        sorted(m, v)
    }

    #[test]
    fn early_exit_leaves_eigenpairs_unchanged() {
        // Representative inputs: random dense, covariance-like (SPD),
        // near-diagonal (early-exit fires immediately), and with clustered
        // eigenvalues via the Gram construction.
        let mut s = 42u64;
        let mut next = |scale: f64| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5) * scale
        };
        let mut cases: Vec<Matrix> = Vec::new();
        for n in [4usize, 12, 24] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let x = next(2.0);
                    a[(i, j)] = x;
                    a[(j, i)] = x;
                }
            }
            cases.push(a.clone());
            cases.push(a.gram()); // SPD
            let mut near_diag =
                Matrix::from_fn(n, n, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
            near_diag[(0, n - 1)] = 1e-13;
            near_diag[(n - 1, 0)] = 1e-13;
            cases.push(near_diag);
        }
        for (case, a) in cases.iter().enumerate() {
            let fast = sym_eigen(a).unwrap();
            let slow = sym_eigen_reference(a);
            let norm = a.frobenius_norm().max(1.0);
            for (f, s) in fast.values.iter().zip(&slow.values) {
                assert!(
                    (f - s).abs() <= 1e-12 * norm,
                    "case {case}: eigenvalue {f} vs {s}"
                );
            }
            assert!(
                fast.reconstruct().max_abs_diff(a) <= 1e-10 * norm,
                "case {case}: reconstruction drifted"
            );
            let vtv = fast.vectors.gram();
            assert!(
                vtv.max_abs_diff(&Matrix::identity(a.rows())) < 1e-10,
                "case {case}: eigenvectors not orthonormal"
            );
        }
    }
}
