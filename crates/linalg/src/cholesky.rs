//! Cholesky decomposition of symmetric positive-definite matrices.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Cholesky factorization `A = L·Lᵀ` with `L` lower-triangular.
///
/// Covariance matrices of the background distribution are SPD (or very
/// nearly so); Cholesky gives the cheapest solves, log-determinants and the
/// `L·z` construction used when sampling `N(m, Σ)`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorize an SPD matrix. Fails with [`LinalgError::NotPositiveDefinite`]
    /// if a pivot is not strictly positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        a.require_square()?;
        if !a.is_finite() {
            return Err(LinalgError::NotFinite);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorize with a non-negative ridge added to the diagonal; used when a
    /// covariance may be positive *semi*-definite (e.g. zero-variance
    /// directions created by small clusters, paper §II-A-2).
    pub fn new_with_ridge(a: &Matrix, ridge: f64) -> Result<Self> {
        let mut b = a.clone();
        for i in 0..b.rows() {
            b[(i, i)] += ridge;
        }
        Cholesky::new(&b)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` via two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        // Forward: L y = b.
        for i in 0..n {
            let mut acc = y[i];
            for k in 0..i {
                acc -= self.l[(i, k)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in (i + 1)..n {
                acc -= self.l[(k, i)] * y[k];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Explicit inverse `A⁻¹`.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let x = self.solve(&e)?;
            out.set_col(j, &x);
        }
        // The inverse of an SPD matrix is symmetric; enforce it exactly to
        // keep downstream eigendecompositions clean.
        out.symmetrize();
        Ok(out)
    }

    /// `log det A = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// `L z` — maps a standard-normal vector `z` to a sample of `N(0, A)`.
    pub fn l_times(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.dim(), "l_times: length mismatch");
        let n = self.dim();
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.l[(i, k)] * z[k];
            }
            out[i] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
    }

    #[test]
    fn reconstruction_l_lt() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn l_is_lower_triangular() {
        let ch = Cholesky::new(&spd3()).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![0.5, -1.5, 2.0];
        let b = a.matvec(&x_true);
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_is_symmetric_and_correct() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        assert!(inv.is_symmetric(0.0));
        assert!(a.matmul(&inv).max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd3();
        let ld = Cholesky::new(&a).unwrap().log_det();
        let d = crate::lu::det(&a).unwrap();
        assert!((ld - d.ln()).abs() < 1e-12);
    }

    #[test]
    fn identity_log_det_is_zero() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-15);
    }

    #[test]
    fn non_pd_matrix_rejected_with_pivot_index() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        match Cholesky::new(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn ridge_rescues_semidefinite_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]); // rank 1
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::new_with_ridge(&a, 1e-9).is_ok());
    }

    #[test]
    fn l_times_maps_identity_to_l_columns() {
        let ch = Cholesky::new(&spd3()).unwrap();
        let z = vec![1.0, 0.0, 0.0];
        let out = ch.l_times(&z);
        assert_eq!(out, ch.l().col(0));
    }

    #[test]
    fn rejects_rectangular_and_non_finite() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        let bad = Matrix::from_rows(&[vec![f64::INFINITY]]);
        assert!(matches!(Cholesky::new(&bad), Err(LinalgError::NotFinite)));
    }
}
