//! Householder QR decomposition.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;
use crate::Result;

/// Thin QR decomposition `A = Q·R` of an `m × n` matrix with `m ≥ n`,
/// computed with Householder reflections.
///
/// Used for least-squares fits in the experiment harness and for the
/// symmetric decorrelation step of FastICA (orthonormalizing a set of
/// direction vectors).
#[derive(Debug, Clone)]
pub struct Qr {
    /// `m × n`, orthonormal columns.
    q: Matrix,
    /// `n × n`, upper triangular.
    r: Matrix,
}

impl Qr {
    /// Factorize `a` (requires `rows ≥ cols`).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, n),
                got: (m, n),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NotFinite);
        }
        let mut r = a.clone();
        // Accumulate Q by applying the reflections to an identity.
        let mut q_full = Matrix::identity(m);
        let mut v = vec![0.0; m];
        for k in 0..n {
            // Householder vector for column k, rows k..m.
            let mut norm_x = 0.0;
            for i in k..m {
                norm_x += r[(i, k)] * r[(i, k)];
            }
            let norm_x = norm_x.sqrt();
            if norm_x == 0.0 {
                continue; // column already zero below the diagonal
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm_x } else { norm_x };
            for i in 0..m {
                v[i] = if i < k { 0.0 } else { r[(i, k)] };
            }
            v[k] -= alpha;
            let vnorm_sq = vector::norm2_sq(&v[k..]);
            if vnorm_sq == 0.0 {
                continue;
            }
            let beta = 2.0 / vnorm_sq;
            // R ← (I - beta v vᵀ) R
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let s = beta * dot;
                for i in k..m {
                    r[(i, j)] -= s * v[i];
                }
            }
            // Qᵗ accumulation: Q ← Q (I - beta v vᵀ)
            for i in 0..m {
                let mut dot = 0.0;
                for l in k..m {
                    dot += q_full[(i, l)] * v[l];
                }
                let s = beta * dot;
                for l in k..m {
                    q_full[(i, l)] -= s * v[l];
                }
            }
        }
        // Thin factors.
        let mut q = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                q[(i, j)] = q_full[(i, j)];
            }
        }
        let mut r_thin = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r_thin[(i, j)] = r[(i, j)];
            }
        }
        Ok(Qr { q, r: r_thin })
    }

    /// Orthonormal factor `Q` (`m × n`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// Upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Least-squares solve `min ‖A x − b‖₂` via `R x = Qᵀ b`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.q.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                expected: (m, 1),
                got: (b.len(), 1),
            });
        }
        let qtb = self.q.tr_matvec(b);
        let mut x = qtb;
        for i in (0..n).rev() {
            let rii = self.r[(i, i)];
            if rii.abs() < 1e-300 {
                return Err(LinalgError::Singular { pivot: i });
            }
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.r[(i, j)] * x[j];
            }
            x[i] = acc / rii;
        }
        Ok(x)
    }
}

/// Orthonormalize the **rows** of `w` (in place view of FastICA's stacked
/// direction vectors) via QR of the transpose. Returns a matrix with
/// orthonormal rows spanning the same space.
pub fn orthonormalize_rows(w: &Matrix) -> Result<Matrix> {
    let qr = Qr::new(&w.transpose())?;
    Ok(qr.q().transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.5],
        ])
    }

    #[test]
    fn reconstruction_qr() {
        let a = tall();
        let qr = Qr::new(&a).unwrap();
        let rec = qr.q().matmul(qr.r());
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let qr = Qr::new(&tall()).unwrap();
        let qtq = qr.q().gram();
        assert!(qtq.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = Qr::new(&tall()).unwrap();
        for i in 0..2 {
            for j in 0..i {
                assert_eq!(qr.r()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Fit y = a + b t on noisy-ish points; compare with the analytic
        // normal-equation solution.
        let t = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.1, 2.9, 4.2];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { t[i] });
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&y).unwrap();
        // Normal equations: AᵀA x = Aᵀ y
        let ata = a.gram();
        let aty = a.tr_matvec(&y);
        let x2 = crate::lu::Lu::new(&ata).unwrap().solve(&aty).unwrap();
        for (u, v) in x.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn exact_system_solved_exactly() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0], vec![0.0, 0.0]]);
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&[4.0, 9.0, 0.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-13);
        assert!((x[1] - 3.0).abs() < 1e-13);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::new(&a).is_err());
    }

    #[test]
    fn rank_deficient_solve_reports_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]]);
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn orthonormalize_rows_produces_orthonormal_rows() {
        let w = Matrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![1.0, 0.0, 1.0]]);
        let o = orthonormalize_rows(&w).unwrap();
        let wwt = o.matmul(&o.transpose());
        assert!(wwt.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn square_orthogonal_input_is_preserved_up_to_sign() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let w = Matrix::from_rows(&[vec![s, s], vec![s, -s]]);
        let o = orthonormalize_rows(&w).unwrap();
        // Rows must still be orthonormal and span the same plane.
        assert!(o.matmul(&o.transpose()).max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn non_finite_rejected() {
        let a = Matrix::from_rows(&[vec![1.0], vec![f64::NAN]]);
        assert!(matches!(Qr::new(&a), Err(LinalgError::NotFinite)));
    }
}
