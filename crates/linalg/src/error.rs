//! Error type shared by all decompositions in this crate.

use std::fmt;

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// An operation requiring a square matrix received a rectangular one.
    NotSquare { rows: usize, cols: usize },
    /// Dimensions of the operands do not line up.
    DimensionMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// Cholesky factorization hit a non-positive pivot.
    NotPositiveDefinite { pivot: usize },
    /// LU solve hit an (effectively) zero pivot.
    Singular { pivot: usize },
    /// An iterative method (Jacobi eigen / SVD) did not reach the requested
    /// tolerance within its sweep budget.
    ConvergenceFailure { sweeps: usize },
    /// Cyclic Jacobi spent its whole sweep budget without driving the
    /// off-diagonal mass below tolerance. This is the bottom of the
    /// eigensolver fallback ladder, so it carries enough context to
    /// diagnose the input: matrix size, the off-diagonal Frobenius mass
    /// actually achieved, and the tolerance it had to reach.
    SweepBudgetExhausted {
        sweeps: usize,
        size: usize,
        off_mass: f64,
        tol: f64,
    },
    /// Input contained NaN or infinity.
    NotFinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::DimensionMismatch { expected, got } => write!(
                f,
                "dimension mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot {pivot})")
            }
            LinalgError::ConvergenceFailure { sweeps } => {
                write!(f, "iteration failed to converge after {sweeps} sweeps")
            }
            LinalgError::SweepBudgetExhausted {
                sweeps,
                size,
                off_mass,
                tol,
            } => write!(
                f,
                "Jacobi failed to converge on a {size}x{size} matrix after {sweeps} sweeps: \
                 off-diagonal mass {off_mass:.3e} still above tolerance {tol:.3e}"
            ),
            LinalgError::NotFinite => write!(f, "input contains NaN or infinite entries"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_problem() {
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
        let e = LinalgError::DimensionMismatch {
            expected: (4, 4),
            got: (4, 5),
        };
        assert!(e.to_string().contains("expected 4x4"));
        let e = LinalgError::NotPositiveDefinite { pivot: 1 };
        assert!(e.to_string().contains("positive definite"));
        let e = LinalgError::Singular { pivot: 0 };
        assert!(e.to_string().contains("singular"));
        let e = LinalgError::ConvergenceFailure { sweeps: 30 };
        assert!(e.to_string().contains("30"));
        let e = LinalgError::SweepBudgetExhausted {
            sweeps: 64,
            size: 48,
            off_mass: 3.5e-9,
            tol: 1.2e-12,
        };
        let msg = e.to_string();
        assert!(msg.contains("48x48"), "{msg}");
        assert!(msg.contains("64 sweeps"), "{msg}");
        assert!(msg.contains("3.500e-9"), "{msg}");
        assert!(msg.contains("1.200e-12"), "{msg}");
        assert!(LinalgError::NotFinite.to_string().contains("NaN"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LinalgError::Singular { pivot: 3 },
            LinalgError::Singular { pivot: 3 }
        );
        assert_ne!(
            LinalgError::Singular { pivot: 3 },
            LinalgError::Singular { pivot: 4 }
        );
    }
}
