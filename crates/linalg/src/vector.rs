//! Free functions on `&[f64]` slices.
//!
//! The MaxEnt solver manipulates constraint directions `w ∈ R^d` as plain
//! slices; these helpers keep that code allocation-free where possible.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean distance between `x` and `y`.
#[inline]
pub fn dist(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// `y += alpha * x` (BLAS `axpy`).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place: `x *= alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Normalize `x` to unit Euclidean norm in place.
///
/// Returns the original norm. If the norm is zero (or not finite) the
/// vector is left untouched and `0.0` is returned, so callers can detect
/// the degenerate case.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 && n.is_finite() {
        scale(x, 1.0 / n);
        n
    } else {
        0.0
    }
}

/// Element-wise difference `x - y` into a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Element-wise sum `x + y` into a new vector.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Arithmetic mean of the entries; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Largest absolute entry; `0.0` for an empty slice.
pub fn max_abs(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// True if every entry is finite.
pub fn is_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Remove the projection of `x` onto each (assumed orthonormal) row of
/// `basis`, i.e. Gram–Schmidt against an existing orthonormal set.
pub fn orthogonalize_against(x: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let c = dot(x, b);
        axpy(-c, b, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm2_sq(&x), 25.0);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_self() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        assert_eq!(dist(&x, &y), 5.0);
        assert_eq!(dist(&y, &x), 5.0);
        assert_eq!(dist(&x, &x), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(&mut x, -3.0);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn normalize_returns_previous_norm() {
        let mut x = [0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = [0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.0, 2.0];
        let y = [0.5, -0.5];
        assert_eq!(sub(&add(&x, &y), &y), x.to_vec());
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn max_abs_ignores_sign() {
        assert_eq!(max_abs(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn finiteness_check() {
        assert!(is_finite(&[1.0, 2.0]));
        assert!(!is_finite(&[1.0, f64::NAN]));
        assert!(!is_finite(&[f64::INFINITY]));
    }

    #[test]
    fn orthogonalize_against_removes_components() {
        let e1 = vec![1.0, 0.0, 0.0];
        let e2 = vec![0.0, 1.0, 0.0];
        let mut x = [3.0, 4.0, 5.0];
        orthogonalize_against(&mut x, &[e1, e2]);
        assert!((x[0]).abs() < 1e-15);
        assert!((x[1]).abs() < 1e-15);
        assert_eq!(x[2], 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
