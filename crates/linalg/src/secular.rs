//! The diagonal-plus-rank-1 symmetric eigenproblem `D + ρ·z·zᵀ`.
//!
//! This is the shared inner kernel of two callers:
//!
//! * [`SymEigen::rank1_update`](crate::SymEigen::rank1_update) — the
//!   Bunch–Nielsen–Sorensen incremental maintenance path, which rotates a
//!   rank-1 perturbation into the current eigenbasis;
//! * the merge step of the tridiagonal divide-and-conquer solver
//!   ([`crate::eigen_dc`]) — after splitting `T` on an off-diagonal
//!   element, the two halves' eigendecompositions combine into exactly
//!   this problem with `ρ` the split coupling.
//!
//! Both reduce to: eigenvalues of `D + ρzzᵀ` are the roots of the
//! *secular equation* `f(λ) = 1 + ρ·Σᵢ zᵢ²/(dᵢ − λ) = 0`, one root
//! strictly interlaced in each gap of the (deflated) spectrum. The
//! machinery lives here once — deflation, the two-pole-initialized
//! safeguarded Newton, and the negated-problem path for `ρ < 0` — so the
//! update and D&C paths cannot diverge.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;
use crate::Result;

/// Components with `|zᵢ| ≤ Z_DEFLATE_REL·‖z‖` are deflated: dropping them
/// perturbs the updated matrix by `|ρ|·zᵢ²`, i.e. by a factor ≤ 1e−28 of
/// the update's own norm — far below every downstream tolerance.
pub(crate) const Z_DEFLATE_REL: f64 = 1e-14;

/// Eigenvalues closer than `EQ_TOL_REL` *relative to their own magnitude*
/// are treated as repeated and merged by rotation. The tolerance is
/// pairwise-relative (not relative to the spectral radius) so that a
/// spectrum mixing collapsed `~1e12` directions with `~1` directions does
/// not get its small eigenvalues smeared together.
pub(crate) const EQ_TOL_REL: f64 = 1e-12;

/// Hard cap on secular Newton/bisection steps per root (the bracket
/// halves at least every other step, so 200 is unreachable in practice).
const MAX_SECULAR_ITERS: usize = 200;

/// Solve `D + ρ·z·zᵀ` expressed in an explicit basis: `v` holds (as
/// columns) the vectors paired with the **ascending** diagonal `d`, and is
/// updated in place so its columns pair with the returned eigenvalues
/// (also ascending). `z` is consumed as scratch by the deflation pass.
///
/// Returns `Ok(None)` when the update deflates away entirely (`ρ = 0`,
/// `z = 0`, or every component below the deflation threshold): `v` is
/// untouched and the eigenvalues are `d` unchanged. Otherwise returns the
/// new ascending eigenvalues with `v` rewritten.
///
/// Deflation handles the two classical degenerate cases first: components
/// with `zᵢ ≈ 0` (that eigenpair is untouched by the update) and repeated
/// eigenvalues, collapsed onto one representative by Givens rotations
/// inside the eigenspace (applied directly to the columns of `v`).
pub(crate) fn diag_plus_rank1_in_basis(
    d: &[f64],
    z: &mut [f64],
    rho: f64,
    v: &mut Matrix,
) -> Result<Option<Vec<f64>>> {
    let n = d.len();
    debug_assert_eq!(z.len(), n);
    debug_assert_eq!(v.cols(), n);
    if n == 0 || rho == 0.0 {
        return Ok(None);
    }
    let znorm2 = vector::norm2_sq(z);
    if znorm2 == 0.0 {
        return Ok(None);
    }

    // Deflation pass: collapse repeated eigenvalues. Scanning the
    // *non-deflated* predecessors chains groups correctly even when
    // near-equal entries are separated by already-negligible ones.
    let z_tol = Z_DEFLATE_REL * znorm2.sqrt();
    let mut last_nd: Option<usize> = None;
    for k in 0..n {
        if z[k].abs() <= z_tol {
            continue;
        }
        if let Some(p) = last_nd {
            let scale = d[k].abs().max(d[p].abs());
            if (d[k] - d[p]).abs() <= EQ_TOL_REL * scale {
                // Givens rotation in the (p, k) eigenplane zeroing
                // z[p]: new v_p = c·v_p − s·v_k, v_k = s·v_p + c·v_k.
                let r = z[p].hypot(z[k]);
                let (c, s) = (z[k] / r, z[p] / r);
                rotate_columns(v, p, k, c, s);
                z[p] = 0.0;
                z[k] = r;
            }
        }
        if z[k].abs() > z_tol {
            last_nd = Some(k);
        }
    }

    // Partition into deflated (eigenpair untouched) and active.
    let nd: Vec<usize> = (0..n).filter(|&k| z[k].abs() > z_tol).collect();
    let m = nd.len();
    if m == 0 {
        return Ok(None);
    }
    let d_nd: Vec<f64> = nd.iter().map(|&k| d[k]).collect();
    let z_nd: Vec<f64> = nd.iter().map(|&k| z[k]).collect();
    let (new_vals, q) = solve_diag_plus_rank1(&d_nd, &z_nd, rho)?;

    // Map the active vectors back to the caller's basis in one blocked
    // rank-m product W = V[:, nd] · Q read directly from the selected
    // columns (no materialized sub-matrix).
    let w_new = v.matmul_select_cols(&nd, &q);

    // Merge (deflated ascending) ∪ (updated ascending) by value —
    // deterministic, no comparison-sort needed.
    let rows = v.rows();
    let mut active = vec![false; n];
    for &k in &nd {
        active[k] = true;
    }
    let mut values = Vec::with_capacity(n);
    let mut vectors = Matrix::zeros(rows, n);
    let mut defl = (0..n).filter(|&k| !active[k]).peekable();
    let mut upd = (0..m).peekable();
    for slot in 0..n {
        let take_defl = match (defl.peek(), upd.peek()) {
            (Some(&k), Some(&j)) => d[k] <= new_vals[j],
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_defl {
            let k = defl.next().unwrap();
            values.push(d[k]);
            for i in 0..rows {
                vectors[(i, slot)] = v[(i, k)];
            }
        } else {
            let j = upd.next().unwrap();
            values.push(new_vals[j]);
            for i in 0..rows {
                vectors[(i, slot)] = w_new[(i, j)];
            }
        }
    }
    *v = vectors;
    Ok(Some(values))
}

/// Eigendecomposition of the fully deflated problem: `d` strictly
/// increasing and every `zᵢ` above the deflation threshold. Returns the
/// `m` new eigenvalues (ascending) and the `m×m` eigenvector coefficients
/// in the deflated basis (column `j` pairs with value `j`).
pub(crate) fn solve_diag_plus_rank1(d: &[f64], z: &[f64], rho: f64) -> Result<(Vec<f64>, Matrix)> {
    let m = d.len();
    if m == 1 {
        // 1×1 problem: exact closed form, eigenvector unchanged.
        return Ok((vec![d[0] + rho * z[0] * z[0]], Matrix::identity(1)));
    }
    if rho > 0.0 {
        solve_secular_system(d, z, rho)
    } else {
        // ρ < 0: negate the problem (−A' = (−D) + (−ρ)zzᵀ keeps
        // −ρ > 0; eigenvalues negate, ascending order reverses).
        let d_neg: Vec<f64> = d.iter().rev().map(|&x| -x).collect();
        let z_neg: Vec<f64> = z.iter().rev().copied().collect();
        let (vals_neg, q_neg) = solve_secular_system(&d_neg, &z_neg, -rho)?;
        let vals: Vec<f64> = vals_neg.iter().rev().map(|&x| -x).collect();
        // Un-reverse both index axes of the eigenvector coefficients.
        let q = Matrix::from_fn(m, m, |i, j| q_neg[(m - 1 - i, m - 1 - j)]);
        Ok((vals, q))
    }
}

/// Rotate columns `p, q` of `v`: `v_p ← c·v_p − s·v_q`, `v_q ← s·v_p + c·v_q`.
fn rotate_columns(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    for i in 0..v.rows() {
        let vp = v[(i, p)];
        let vq = v[(i, q)];
        v[(i, p)] = c * vp - s * vq;
        v[(i, q)] = s * vp + c * vq;
    }
}

/// Solve the full secular system for `D + ρzzᵀ` with `ρ > 0`, `d` strictly
/// increasing (post-deflation) and every `zᵢ ≠ 0`: returns the `m` new
/// eigenvalues (ascending) and the `m×m` matrix of eigenvector
/// coefficients in the deflated basis (column `j` pairs with value `j`).
fn solve_secular_system(d: &[f64], z: &[f64], rho: f64) -> Result<(Vec<f64>, Matrix)> {
    let m = d.len();
    let znorm2 = vector::norm2_sq(z);
    let mut vals = Vec::with_capacity(m);
    let mut roots = Vec::with_capacity(m);
    let mut delta = vec![0.0; m];
    for j in 0..m {
        // Root j lives strictly inside (d_j, d_{j+1}); the last one inside
        // (d_m, d_m + ρ‖z‖²] by the trace bound.
        let (b, b_is_pole) = if j + 1 < m {
            (d[j + 1], true)
        } else {
            (d[m - 1] + rho * znorm2, false)
        };
        let root = secular_root(d, z, rho, j, b, b_is_pole, &mut delta)?;
        vals.push(root.shift + root.mu);
        roots.push(root);
    }
    // Eigenvector coefficients: vᵢ ∝ zᵢ / (dᵢ − λ), evaluated in the
    // root's pole-shifted form (dᵢ − shift) − μ to avoid cancellation.
    let mut q = Matrix::zeros(m, m);
    for (j, root) in roots.iter().enumerate() {
        let mut norm2 = 0.0;
        for i in 0..m {
            let denom = (d[i] - root.shift) - root.mu;
            let v = z[i] / denom;
            q[(i, j)] = v;
            norm2 += v * v;
        }
        let inv = 1.0 / norm2.sqrt();
        for i in 0..m {
            q[(i, j)] *= inv;
        }
    }
    Ok((vals, q))
}

/// A secular root expressed as `λ = shift + μ`, with `shift` the nearer
/// bracketing pole — kept split so `dᵢ − λ` can be evaluated without
/// cancellation when `λ` hugs a pole.
#[derive(Debug, Clone, Copy)]
struct SecularRoot {
    shift: f64,
    mu: f64,
}

/// Safeguarded Newton for root `j` of the secular function, over the open
/// interval `(d_j, b)`: the bracket only ever shrinks, Newton steps that
/// would leave it are replaced by bisection, and every evaluation uses
/// precomputed pole distances `delta_i = d_i − shift` so `f` stays
/// accurate arbitrarily close to the bracketing poles. `f` is strictly
/// increasing on the interval (ρ > 0), from `−∞` at `d_j⁺` to `+∞` at
/// `b⁻` (or to `f(b) ≥ 0` when `b` is the trace-bound endpoint of the
/// open last interval, `b_is_pole = false`).
///
/// The iteration starts from the root of the two-pole rational model
/// `C + p/(d_j − λ) + q/(b − λ)` — the bracketing terms kept exact, the
/// rest frozen at the midpoint sample `C` (the dlaed4 idea) — which lands
/// within a few percent of the true root, so the Newton phase typically
/// finishes in a handful of iterations instead of a bisection-like crawl.
#[allow(clippy::too_many_arguments)]
fn secular_root(
    d: &[f64],
    z: &[f64],
    rho: f64,
    j: usize,
    b: f64,
    b_is_pole: bool,
    delta: &mut [f64],
) -> Result<SecularRoot> {
    let a = d[j];
    let g = b - a;
    if !(g.is_finite() && g > 0.0) {
        return Err(LinalgError::ConvergenceFailure { sweeps: 0 });
    }
    // One midpoint sample decides which pole to shift from (the root sits
    // in the half where f changes sign) and anchors the rational model.
    let half = 0.5 * g;
    for (dst, &di) in delta.iter_mut().zip(d) {
        *dst = di - a;
    }
    let f_mid = secular_f(delta, z, rho, half).0;
    let p = rho * z[j] * z[j];
    let q = if b_is_pole {
        rho * z[j + 1] * z[j + 1]
    } else {
        0.0
    };
    // The model's non-bracketing mass, recovered from the midpoint sample
    // (at λ_mid: d_j − λ = −half, b − λ = +half).
    let c = f_mid + p / half - q / half;
    // (shift, lo, hi) with f(lo) ≤ 0 ≤ f(hi) in μ-space, and the model
    // root as the starting point (clamped to the bracket's interior).
    let (shift, lo_init, hi_init, guess) = if f_mid >= 0.0 {
        // Root in (a, mid]: smaller root of Cμ² − (Cg+p+q)μ + pg = 0 in
        // the numerically stable divide-by-the-large-root form.
        let bq = c * g + p + q;
        let disc = (bq * bq - 4.0 * c * p * g).max(0.0);
        let mu = 2.0 * p * g / (bq + disc.sqrt());
        (a, 0.0, half, mu)
    } else if q > 0.0 {
        // Root in (mid, b): in ν = λ − b the model reads
        // Cν² − (Cg − p − q)ν − qg = 0; take its negative root.
        let bq = c * g - p - q;
        let disc = (bq * bq + 4.0 * c * q * g).max(0.0);
        let nu = -2.0 * q * g / (disc.sqrt() - bq);
        (b, -half, 0.0, nu)
    } else {
        // Last interval (b not a pole): C − p/(g + ν) = 0.
        let nu = if c > 0.0 { p / c - g } else { f64::NAN };
        (b, -half, 0.0, nu)
    };
    if shift != a {
        for (dst, &di) in delta.iter_mut().zip(d) {
            *dst = di - b;
        }
    }
    let (mut lo, mut hi) = (lo_init, hi_init);
    let mut mu = if guess.is_finite() && guess > lo && guess < hi {
        guess
    } else {
        0.5 * (lo + hi)
    };
    for _ in 0..MAX_SECULAR_ITERS {
        let (f, fp, fabs) = secular_f(delta, z, rho, mu);
        // Resolution-limited: |f| indistinguishable from round-off of its
        // own terms.
        if f == 0.0 || f.abs() <= 1e-14 * fabs {
            break;
        }
        if f > 0.0 {
            hi = mu;
        } else {
            lo = mu;
        }
        let step = -f / fp;
        let mut next = mu + step;
        if !next.is_finite() || next <= lo || next >= hi {
            next = 0.5 * (lo + hi);
        }
        let span = (hi - lo).abs();
        if span <= 1e-15 * (shift.abs() + mu.abs()) + f64::MIN_POSITIVE || next == mu {
            break;
        }
        mu = next;
    }
    // Never return a pole itself (μ = 0 would make the eigenvector
    // formula divide by zero); nudge inside the bracket.
    if mu == 0.0 {
        mu = 0.5 * (lo + hi);
        if mu == 0.0 {
            // Bracket collapsed exactly onto the pole: unresolvable here,
            // let the caller recompute from scratch.
            return Err(LinalgError::ConvergenceFailure { sweeps: 0 });
        }
    }
    Ok(SecularRoot { shift, mu })
}

/// Secular function at `λ = shift + μ` given precomputed pole distances
/// `delta_i = d_i − shift` (exact when `shift` is one of the `d_i`):
/// returns `(f, f′, Σ|terms|)`.
fn secular_f(delta: &[f64], z: &[f64], rho: f64, mu: f64) -> (f64, f64, f64) {
    let mut f = 1.0;
    let mut fp = 0.0;
    let mut fabs = 1.0;
    for (&dl, &zi) in delta.iter().zip(z) {
        let r = zi / (dl - mu);
        let term = rho * zi * r;
        f += term;
        fabs += term.abs();
        fp += rho * r * r;
    }
    (f, fp, fabs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_single_component() {
        let (vals, q) = solve_diag_plus_rank1(&[2.0], &[3.0], 0.5).unwrap();
        assert_eq!(vals, vec![2.0 + 0.5 * 9.0]);
        assert_eq!(q, Matrix::identity(1));
    }

    #[test]
    fn secular_values_interlace() {
        let d = [0.0, 1.0, 2.0, 5.0];
        let z = [0.5, 0.5, 0.5, 0.5];
        let (vals, _) = solve_diag_plus_rank1(&d, &z, 1.0).unwrap();
        for j in 0..d.len() {
            assert!(vals[j] > d[j], "root {j} below its pole");
            if j + 1 < d.len() {
                assert!(vals[j] < d[j + 1], "root {j} above the next pole");
            }
        }
        // Trace is preserved: Σλ = Σd + ρ‖z‖².
        let trace: f64 = vals.iter().sum();
        let expect: f64 = d.iter().sum::<f64>() + 1.0;
        assert!((trace - expect).abs() < 1e-12);
    }

    #[test]
    fn negative_rho_reflects_the_problem() {
        let d = [1.0, 2.0, 4.0];
        let z = [0.3, 0.4, 0.5];
        let (vals, q) = solve_diag_plus_rank1(&d, &z, -0.8).unwrap();
        // Ascending, interlaced from below: d_j − |ρ|‖z‖² < λ_j < d_j.
        for j in 0..d.len() {
            assert!(vals[j] < d[j]);
            if j > 0 {
                assert!(vals[j] > d[j - 1]);
            }
        }
        // Columns are unit vectors.
        for j in 0..3 {
            let n2: f64 = (0..3).map(|i| q[(i, j)] * q[(i, j)]).sum();
            assert!((n2 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn full_deflation_reports_noop() {
        let d = [1.0, 2.0, 3.0];
        let mut z = [0.0, 0.0, 0.0];
        let mut v = Matrix::identity(3);
        let out = diag_plus_rank1_in_basis(&d, &mut z, 1.0, &mut v).unwrap();
        assert!(out.is_none());
        assert_eq!(v, Matrix::identity(3));
    }

    #[test]
    fn repeated_eigenvalues_deflate_by_rotation() {
        // D = I: the update has eigenvalue 1 + ρ‖z‖² along z and 1 elsewhere.
        let d = [1.0, 1.0, 1.0];
        let mut z = [0.6, 0.0, 0.8];
        let mut v = Matrix::identity(3);
        let vals = diag_plus_rank1_in_basis(&d, &mut z, 2.0, &mut v)
            .unwrap()
            .unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-14);
        assert!((vals[1] - 1.0).abs() < 1e-14);
        assert!((vals[2] - 3.0).abs() < 1e-12);
        // Basis stays orthonormal through the Givens rotations.
        assert!(v.gram().max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }
}
