//! LU decomposition with partial pivoting.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// LU decomposition `P·A = L·U` with partial (row) pivoting.
///
/// Used for general square solves, determinants, and the explicit inverses
/// that the naive reference MaxEnt solver needs (the optimized solver avoids
/// them via Woodbury updates).
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: strictly-lower part holds L (unit diagonal implied),
    /// upper part holds U.
    lu: Matrix,
    /// Row permutation: `piv[i]` is the original index of row `i` of `P·A`.
    piv: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used by `det`.
    sign: f64,
}

/// Pivot magnitudes below this are treated as exact zeros (singularity).
const PIVOT_EPS: f64 = 1e-300;

impl Lu {
    /// Factorize a square matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        a.require_square()?;
        if !a.is_finite() {
            return Err(LinalgError::NotFinite);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < PIVOT_EPS {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                lu.swap_rows(p, k);
                piv.swap(p, k);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu { lu, piv, sign })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&i| b[i]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, b.cols()),
                got: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            out.set_col(j, &x);
        }
        Ok(out)
    }

    /// Explicit inverse `A⁻¹`.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Convenience: explicit inverse of a square matrix.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::new(a)?.inverse()
}

/// Convenience: determinant of a square matrix (0.0 when singular).
pub fn det(a: &Matrix) -> Result<f64> {
    match Lu::new(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LinalgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ])
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn det_of_triangular_is_product_of_diagonal() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![0.0, 3.0, 1.0],
            vec![0.0, 0.0, 4.0],
        ]);
        assert!((det(&a).unwrap() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn det_changes_sign_under_row_swap() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((det(&a).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn det_of_singular_matrix_is_zero() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(det(&a).unwrap(), 0.0);
    }

    #[test]
    fn singular_matrix_fails_to_factorize() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rectangular_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn non_finite_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, f64::NAN]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::NotFinite)));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = Lu::new(&spd3()).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = Lu::new(&a).unwrap().solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn solve_matrix_solves_all_columns() {
        let a = spd3();
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let x = Lu::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-12);
    }
}
