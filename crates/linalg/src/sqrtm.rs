//! Symmetric matrix square roots via eigendecomposition.
//!
//! The whitening transform of the paper (Eq. 14) is
//! `y = U·D^{1/2}·Uᵀ·(x − m)` where `Σ⁻¹ = U·D·Uᵀ` — the symmetric
//! (direction-preserving) square root of the precision matrix.

use crate::eigen::SymEigen;
use crate::matrix::Matrix;
use crate::Result;

/// Eigenvalues below this (relative to the largest) are clamped to zero
/// before taking roots, to absorb round-off on PSD matrices.
const CLAMP_RTOL: f64 = 1e-13;

fn clamped(values: &[f64]) -> Vec<f64> {
    let vmax = values.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    let floor = CLAMP_RTOL * vmax;
    values
        .iter()
        .map(|&v| if v < floor { 0.0 } else { v })
        .collect()
}

/// Symmetric square root `A^{1/2}` of a symmetric PSD matrix
/// (`A^{1/2}·A^{1/2} = A`). Tiny negative eigenvalues from round-off are
/// clamped to zero.
pub fn sym_sqrt(a: &Matrix) -> Result<Matrix> {
    let e = SymEigen::decompose(a)?;
    let vals = clamped(&e.values);
    let n = vals.len();
    let mut out = Matrix::zeros(n, n);
    for k in 0..n {
        let col = e.vectors.col(k);
        out.add_outer(vals[k].sqrt(), &col, &col);
    }
    Ok(out)
}

/// Symmetric inverse square root `A^{-1/2}` of a symmetric PSD matrix.
/// Directions with (near-)zero eigenvalue are mapped to zero instead of
/// infinity — these correspond to fully constrained directions of the
/// background distribution and carry no variance to whiten.
pub fn sym_inv_sqrt(a: &Matrix) -> Result<Matrix> {
    let e = SymEigen::decompose(a)?;
    let vals = clamped(&e.values);
    let n = vals.len();
    let mut out = Matrix::zeros(n, n);
    for k in 0..n {
        if vals[k] == 0.0 {
            continue;
        }
        let col = e.vectors.col(k);
        out.add_outer(1.0 / vals[k].sqrt(), &col, &col);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]])
    }

    #[test]
    fn sqrt_squares_back() {
        let a = spd();
        let s = sym_sqrt(&a).unwrap();
        assert!(s.matmul(&s).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn sqrt_is_symmetric() {
        let s = sym_sqrt(&spd()).unwrap();
        assert!(s.is_symmetric(1e-12));
    }

    #[test]
    fn inv_sqrt_inverts() {
        let a = spd();
        let is = sym_inv_sqrt(&a).unwrap();
        let prod = is.matmul(&a).matmul(&is);
        assert!(prod.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn identity_is_fixed_point() {
        let i = Matrix::identity(3);
        assert!(sym_sqrt(&i).unwrap().max_abs_diff(&i) < 1e-14);
        assert!(sym_inv_sqrt(&i).unwrap().max_abs_diff(&i) < 1e-14);
    }

    #[test]
    fn diagonal_roots() {
        let a = Matrix::from_diag(&[9.0, 16.0]);
        let s = sym_sqrt(&a).unwrap();
        assert!((s[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((s[(1, 1)] - 4.0).abs() < 1e-12);
        let is = sym_inv_sqrt(&a).unwrap();
        assert!((is[(0, 0)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn semidefinite_direction_maps_to_zero() {
        // Rank-1 PSD matrix: eigenvalues {2, 0}.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let s = sym_sqrt(&a).unwrap();
        assert!(s.matmul(&s).max_abs_diff(&a) < 1e-12);
        let is = sym_inv_sqrt(&a).unwrap();
        // A^{-1/2} A A^{-1/2} should be the projector onto the range of A.
        let proj = is.matmul(&a).matmul(&is);
        let expected = a.scale(0.5); // projector onto span{(1,1)}
        assert!(proj.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn tiny_negative_eigenvalues_clamped() {
        // Symmetric matrix that is PSD up to round-off.
        let a = Matrix::from_rows(&[vec![1.0, 1.0 - 1e-16], vec![1.0 - 1e-16, 1.0]]);
        let s = sym_sqrt(&a).unwrap();
        assert!(s.is_finite());
    }
}
