//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use sider_linalg::{lu, svd, sym_eigen, woodbury, Cholesky, Matrix, Qr};

/// Strategy: a small matrix with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a symmetric PSD matrix `AᵀA + ridge·I` of size n.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |a| {
        let mut g = a.gram();
        for i in 0..n {
            g[(i, i)] += 0.5; // keep it comfortably positive definite
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_then_multiply_roundtrip(a in spd(4), x in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let b = a.matvec(&x);
        let solved = lu::Lu::new(&a).unwrap().solve(&b).unwrap();
        for (s, t) in solved.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-8, "solved {:?} truth {:?}", solved, x);
        }
    }

    #[test]
    fn lu_inverse_is_two_sided(a in spd(3)) {
        let inv = lu::inverse(&a).unwrap();
        prop_assert!(a.matmul(&inv).max_abs_diff(&Matrix::identity(3)) < 1e-8);
        prop_assert!(inv.matmul(&a).max_abs_diff(&Matrix::identity(3)) < 1e-8);
    }

    #[test]
    fn cholesky_reconstructs(a in spd(4)) {
        let ch = Cholesky::new(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        prop_assert!(rec.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn cholesky_and_lu_solves_agree(a in spd(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let x1 = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x2 = lu::Lu::new(&a).unwrap().solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(a in matrix(5, 3)) {
        let qr = Qr::new(&a).unwrap();
        prop_assert!(qr.q().matmul(qr.r()).max_abs_diff(&a) < 1e-9);
        prop_assert!(qr.q().gram().max_abs_diff(&Matrix::identity(3)) < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in spd(4)) {
        let e = sym_eigen(&a).unwrap();
        prop_assert!(e.reconstruct().max_abs_diff(&a) < 1e-8);
        // Orthonormality of eigenvectors.
        prop_assert!(e.vectors.gram().max_abs_diff(&Matrix::identity(4)) < 1e-9);
        // Descending order.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eigen_trace_and_det_identities(a in spd(3)) {
        let e = sym_eigen(&a).unwrap();
        let tr: f64 = e.values.iter().sum();
        prop_assert!((tr - a.trace()).abs() < 1e-8);
        let det_e: f64 = e.values.iter().product();
        let det_lu = lu::det(&a).unwrap();
        prop_assert!((det_e - det_lu).abs() < 1e-6 * det_lu.abs().max(1.0));
    }

    #[test]
    fn svd_reconstructs(a in matrix(5, 3)) {
        let d = svd(&a).unwrap();
        prop_assert!(d.reconstruct().max_abs_diff(&a) < 1e-9);
        for w in d.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(d.s.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn svd_of_wide_matrix_reconstructs(a in matrix(3, 5)) {
        let d = svd(&a).unwrap();
        prop_assert!(d.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn svd_frobenius_identity(a in matrix(4, 4)) {
        // ‖A‖_F² = Σ s_i².
        let d = svd(&a).unwrap();
        let fro2: f64 = a.frobenius_norm().powi(2);
        let ssum: f64 = d.s.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - ssum).abs() < 1e-7 * fro2.max(1.0));
    }

    #[test]
    fn woodbury_matches_direct_inverse(p in spd(4), w in proptest::collection::vec(-3.0..3.0f64, 4), lambda in 0.0..5.0f64) {
        let sigma = lu::inverse(&p).unwrap();
        let wb = woodbury::updated(&sigma, &w, lambda);
        let mut p2 = p.clone();
        woodbury::precision_update(&mut p2, &w, lambda);
        let direct = lu::inverse(&p2).unwrap();
        prop_assert!(wb.max_abs_diff(&direct) < 1e-7);
    }

    #[test]
    fn sqrtm_roundtrip(a in spd(3)) {
        let s = sider_linalg::sym_sqrt(&a).unwrap();
        prop_assert!(s.matmul(&s).max_abs_diff(&a) < 1e-8);
        let is = sider_linalg::sym_inv_sqrt(&a).unwrap();
        let prod = is.matmul(&a).matmul(&is);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-8);
    }

    #[test]
    fn matmul_associativity(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }
}
