//! Property tests for the rank-1 symmetric eigen update
//! (`sider_linalg::eigen_update`): agreement with a fresh Jacobi
//! decomposition on random SPD matrices, bounded drift under chained
//! updates, and each deflation path exercised explicitly.

use sider_linalg::{sym_eigen, Matrix, SymEigen};

/// Deterministic pseudo-random stream (same LCG idiom as the in-crate
/// eigen tests — the linalg crate must not depend on sider_stats).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    fn vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next()).collect()
    }

    /// Well-conditioned random SPD matrix `R·Rᵀ·0.09 + I`.
    fn spd(&mut self, n: usize) -> Matrix {
        let r = Matrix::from_fn(n, n, |_, _| self.next());
        let mut a = r.gram().scale(0.09);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    }
}

/// Explicitly updated matrix `A + ρwwᵀ`.
fn updated_matrix(a: &Matrix, w: &[f64], rho: f64) -> Matrix {
    let mut out = a.clone();
    out.add_outer(rho, w, w);
    out.symmetrize();
    out
}

/// Assert an eigendecomposition represents `target`: descending sorted
/// values matching a fresh Jacobi solve, faithful reconstruction, and an
/// orthonormal basis.
fn assert_represents(eig: &SymEigen, target: &Matrix, tol: f64, ctx: &str) {
    let fresh = sym_eigen(target).unwrap();
    let scale = target.frobenius_norm().max(1.0);
    for (k, (a, b)) in eig.values.iter().zip(&fresh.values).enumerate() {
        assert!(
            (a - b).abs() <= tol * scale,
            "{ctx}: eigenvalue {k}: {a} vs fresh {b}"
        );
    }
    assert!(
        eig.reconstruct().max_abs_diff(target) <= tol * scale,
        "{ctx}: U·D·Uᵀ drifted from the updated matrix by {}",
        eig.reconstruct().max_abs_diff(target)
    );
    assert!(
        eig.orthogonality_drift() <= tol,
        "{ctx}: basis drift {}",
        eig.orthogonality_drift()
    );
    let mut sorted = eig.values.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert_eq!(sorted, eig.values, "{ctx}: values not descending");
}

#[test]
fn random_spd_updates_match_fresh_decomposition() {
    let mut rng = Lcg(0xfeed);
    for n in [2usize, 3, 5, 8, 16, 24] {
        for rep in 0..6 {
            let a = rng.spd(n);
            let w = rng.vec(n);
            // Alternate growth and (PD-safe, small) shrink updates.
            let rho = if rep % 2 == 0 { 0.8 } else { -0.2 };
            let mut eig = sym_eigen(&a).unwrap();
            eig.rank1_update(&w, rho).unwrap();
            let target = updated_matrix(&a, &w, rho);
            assert_represents(&eig, &target, 1e-9, &format!("n={n} rep={rep}"));
        }
    }
}

#[test]
fn wide_eigenvalue_spread_keeps_small_directions_accurate() {
    // A collapsed-direction-style spectrum (1e10 vs O(1), as produced by
    // clamped zero-variance constraints) must not smear the small
    // eigenvalues through scale-absolute tolerances.
    let mut rng = Lcg(77);
    let n = 6;
    let mut a = rng.spd(n);
    a[(0, 0)] += 1e10;
    let w = rng.vec(n);
    let mut eig = sym_eigen(&a).unwrap();
    eig.rank1_update(&w, 0.5).unwrap();
    let fresh = sym_eigen(&updated_matrix(&a, &w, 0.5)).unwrap();
    for (k, (got, want)) in eig.values.iter().zip(&fresh.values).enumerate() {
        // Per-eigenvalue *relative* agreement.
        assert!(
            (got - want).abs() <= 1e-8 * want.abs().max(1.0),
            "eigenvalue {k}: {got} vs {want}"
        );
    }
    assert!(eig.orthogonality_drift() < 1e-10);
}

#[test]
fn chained_updates_drift_stays_bounded() {
    let mut rng = Lcg(0xc0de);
    let n = 12;
    let mut a = rng.spd(n);
    let mut eig = sym_eigen(&a).unwrap();
    for step in 0..40 {
        let w = rng.vec(n);
        let rho = 0.3 + 0.05 * (step % 5) as f64;
        eig.rank1_update(&w, rho).unwrap();
        a = updated_matrix(&a, &w, rho);
    }
    let scale = a.frobenius_norm();
    assert!(
        eig.reconstruct().max_abs_diff(&a) <= 1e-9 * scale,
        "chained reconstruction drifted by {}",
        eig.reconstruct().max_abs_diff(&a)
    );
    assert!(
        eig.orthogonality_drift() <= 1e-10,
        "chained basis drift {}",
        eig.orthogonality_drift()
    );
}

#[test]
fn repeated_eigenvalues_deflate_by_rotation() {
    // The identity has a fully degenerate spectrum: a rank-1 update moves
    // exactly one eigenvalue (to 1 + ρ‖w‖²) and leaves the rest at 1.
    let n = 7;
    let mut eig = sym_eigen(&Matrix::identity(n)).unwrap();
    let w: Vec<f64> = (0..n).map(|i| 0.3 + 0.1 * i as f64).collect();
    let norm2: f64 = w.iter().map(|x| x * x).sum();
    eig.rank1_update(&w, 2.0).unwrap();
    assert!((eig.values[0] - (1.0 + 2.0 * norm2)).abs() < 1e-12 * (1.0 + 2.0 * norm2));
    for &v in &eig.values[1..] {
        assert!((v - 1.0).abs() < 1e-12, "degenerate eigenvalue moved: {v}");
    }
    let target = updated_matrix(&Matrix::identity(n), &w, 2.0);
    assert_represents(&eig, &target, 1e-10, "identity update");

    // Partially repeated spectrum: diag(2, 2, 2, 5, 5, 9).
    let a = Matrix::from_diag(&[2.0, 2.0, 2.0, 5.0, 5.0, 9.0]);
    let mut eig = sym_eigen(&a).unwrap();
    let w = vec![0.5, -0.25, 0.125, 1.0, -0.5, 0.75];
    eig.rank1_update(&w, 1.5).unwrap();
    assert_represents(&eig, &updated_matrix(&a, &w, 1.5), 1e-10, "partial repeats");
}

#[test]
fn update_orthogonal_to_eigenvector_leaves_pair_untouched() {
    // w ⊥ e2 for a diagonal matrix: z₂ = 0 deflates, so eigenpair
    // (3, e2) must survive *bit for bit*.
    let a = Matrix::from_diag(&[1.0, 3.0, 7.0]);
    let mut eig = sym_eigen(&a).unwrap();
    let before_val = eig.values[1]; // 3.0 (descending: 7, 3, 1)
    let before_vec = eig.vectors.col(1);
    let w = vec![2.0, 0.0, -1.0];
    eig.rank1_update(&w, 0.9).unwrap();
    let target = updated_matrix(&a, &w, 0.9);
    assert_represents(&eig, &target, 1e-10, "orthogonal w");
    // 3.0 still an eigenvalue with the identical basis column.
    let pos = eig
        .values
        .iter()
        .position(|&v| v == before_val)
        .expect("deflated eigenvalue must survive exactly");
    assert_eq!(eig.vectors.col(pos), before_vec);
}

#[test]
fn near_zero_rho_deflates_to_noop_and_zero_is_exact_noop() {
    let mut rng = Lcg(9);
    let a = rng.spd(5);
    let w = rng.vec(5);
    let base = sym_eigen(&a).unwrap();

    let mut eig = base.clone();
    eig.rank1_update(&w, 0.0).unwrap();
    assert_eq!(eig.values, base.values);
    assert_eq!(eig.vectors.as_slice(), base.vectors.as_slice());

    // λ near zero: the update is a tiny perturbation — values move by at
    // most |ρ|·‖w‖² and the basis stays orthonormal.
    let mut eig = base.clone();
    eig.rank1_update(&w, 1e-13).unwrap();
    let target = updated_matrix(&a, &w, 1e-13);
    assert_represents(&eig, &target, 1e-10, "tiny rho");

    // Zero direction deflates everything: exact no-op.
    let mut eig = base.clone();
    eig.rank1_update(&[0.0; 5], 3.0).unwrap();
    assert_eq!(eig.values, base.values);
    assert_eq!(eig.vectors.as_slice(), base.vectors.as_slice());
}

#[test]
fn shrink_updates_within_pd_bound_agree() {
    // Negative ρ exercises the negated secular path end to end.
    let mut rng = Lcg(31);
    for n in [3usize, 6, 10] {
        let a = rng.spd(n);
        let mut w = rng.vec(n);
        // Keep the update safely inside positive definiteness:
        // ρ > −1/(wᵀA⁻¹w) is guaranteed by a small ‖w‖ and ρ = −0.3.
        for x in &mut w {
            *x *= 0.5;
        }
        let mut eig = sym_eigen(&a).unwrap();
        eig.rank1_update(&w, -0.3).unwrap();
        assert_represents(&eig, &updated_matrix(&a, &w, -0.3), 1e-9, &format!("n={n}"));
    }
}

#[test]
fn rejects_bad_inputs() {
    let mut eig = sym_eigen(&Matrix::identity(3)).unwrap();
    assert!(eig.rank1_update(&[1.0, 2.0], 1.0).is_err());
    assert!(eig.rank1_update(&[f64::NAN, 0.0, 0.0], 1.0).is_err());
    assert!(eig.rank1_update(&[1.0, 0.0, 0.0], f64::INFINITY).is_err());
    // Untouched after every rejected call.
    assert_eq!(eig.values, vec![1.0; 3]);
}

#[test]
fn empty_decomposition_is_a_noop() {
    let mut eig = sym_eigen(&Matrix::zeros(0, 0)).unwrap();
    eig.rank1_update(&[], 2.0).unwrap();
    assert!(eig.values.is_empty());
    assert_eq!(eig.orthogonality_drift(), 0.0);
}
