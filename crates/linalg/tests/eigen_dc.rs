//! Property tests for the divide-and-conquer eigensolver
//! (`sider_linalg::eigen_dc`) and its Householder tridiagonalization
//! front end: agreement with the Jacobi reference on random SPD,
//! clustered/degenerate and wide-spread spectra, plus the forced-fallback
//! contract of the `SymEigen::decompose` dispatch.

use sider_linalg::{sym_eigen, sym_eigen_dc, tridiagonalize, DecomposeOpts, Matrix, SymEigen};

/// Deterministic pseudo-random stream (same LCG idiom as the in-crate
/// eigen tests — the linalg crate must not depend on sider_stats).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    /// Well-conditioned random SPD matrix `R·Rᵀ·0.09 + I`.
    fn spd(&mut self, n: usize) -> Matrix {
        let r = Matrix::from_fn(n, n, |_, _| self.next());
        let mut a = r.gram().scale(0.09);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    }

    /// Random symmetric matrix with the *prescribed* spectrum: `U·D·Uᵀ`
    /// where `U` is the eigenbasis of a random SPD draw.
    fn with_spectrum(&mut self, values: &[f64]) -> Matrix {
        let basis = sym_eigen(&self.spd(values.len())).unwrap();
        SymEigen {
            values: values.to_vec(),
            vectors: basis.vectors,
        }
        .reconstruct()
    }
}

/// Assert a decomposition represents `target`: descending values agreeing
/// with a fresh Jacobi solve to `tol·scale`, faithful reconstruction, and
/// an orthonormal basis.
fn assert_represents(eig: &SymEigen, target: &Matrix, tol: f64, ctx: &str) {
    let fresh = sym_eigen(target).unwrap();
    let scale = target.frobenius_norm().max(1.0);
    for (k, (a, b)) in eig.values.iter().zip(&fresh.values).enumerate() {
        assert!(
            (a - b).abs() <= tol * scale,
            "{ctx}: eigenvalue {k}: {a} vs jacobi {b}"
        );
    }
    assert!(
        eig.reconstruct().max_abs_diff(target) <= tol * scale,
        "{ctx}: U·D·Uᵀ off by {}",
        eig.reconstruct().max_abs_diff(target)
    );
    assert!(
        eig.orthogonality_drift() <= tol.max(1e-8),
        "{ctx}: basis drift {}",
        eig.orthogonality_drift()
    );
    let mut sorted = eig.values.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert_eq!(sorted, eig.values, "{ctx}: values not descending");
}

#[test]
fn random_spd_agrees_with_jacobi_above_threshold() {
    let mut rng = Lcg(0xd1ce);
    for n in [33usize, 48, 64, 97] {
        for rep in 0..3 {
            let a = rng.spd(n);
            let eig = SymEigen::decompose(&a).unwrap();
            assert_represents(&eig, &a, 1e-10, &format!("n={n} rep={rep}"));
        }
    }
}

#[test]
fn clustered_and_degenerate_spectra_agree() {
    let mut rng = Lcg(0xbeef);
    // Heavy degeneracy: three plateaus across a 40-dim spectrum — the
    // D&C merge must deflate the repeats instead of solving near-singular
    // secular equations.
    let mut values: Vec<f64> = Vec::new();
    for k in 0..40usize {
        values.push(match k % 3 {
            0 => 2.0,
            1 => 5.0,
            _ => 9.0,
        });
    }
    let a = rng.with_spectrum(&values);
    let eig = SymEigen::decompose(&a).unwrap();
    assert_represents(&eig, &a, 1e-9, "three plateaus");

    // Fully degenerate: a scaled identity must come back exactly flat.
    let a = Matrix::identity(50).scale(4.0);
    let eig = SymEigen::decompose(&a).unwrap();
    for &v in &eig.values {
        assert!((v - 4.0).abs() < 1e-12, "degenerate eigenvalue moved: {v}");
    }
    assert!(eig.orthogonality_drift() < 1e-12);

    // Near-degenerate pairs split by 1e-13: clusters below the deflation
    // tolerance must still reconstruct the matrix faithfully.
    let values: Vec<f64> = (0..36)
        .map(|k| 3.0 + (k / 2) as f64 + if k % 2 == 0 { 0.0 } else { 1e-13 })
        .collect();
    let a = rng.with_spectrum(&values);
    let eig = SymEigen::decompose(&a).unwrap();
    assert_represents(&eig, &a, 1e-9, "near-degenerate pairs");
}

#[test]
fn wide_spread_spectra_reconstruct_within_bounds() {
    // Eigenvalues spanning twelve decades down to 1e-8 (collapsed-
    // direction territory): reconstruction and orthogonality must hold at
    // the matrix scale, and the dominant eigenvalues must agree with
    // Jacobi to near machine precision *relative to themselves*.
    let mut rng = Lcg(0xace);
    let n = 40;
    let values: Vec<f64> = (0..n)
        .map(|k| 1e4 * (1e-12f64).powf(k as f64 / (n - 1) as f64))
        .collect();
    let a = rng.with_spectrum(&values);
    let eig = SymEigen::decompose(&a).unwrap();
    assert_represents(&eig, &a, 1e-11, "wide spread");
    let fresh = sym_eigen(&a).unwrap();
    for (k, (got, want)) in eig.values.iter().zip(&fresh.values).enumerate() {
        if want.abs() >= 1.0 {
            assert!(
                (got - want).abs() <= 1e-10 * want.abs(),
                "eigenvalue {k}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn forced_fallback_is_jacobi_bit_for_bit() {
    // A negative drift tolerance rejects every D&C result at the dispatch
    // — the documented failure-injection point — so decompose_with must
    // return exactly what the Jacobi reference produces.
    let mut rng = Lcg(0x0f01);
    let a = rng.spd(45);
    let opts = DecomposeOpts {
        drift_tol: -1.0,
        ..DecomposeOpts::default()
    };
    let fallback = SymEigen::decompose_with(&a, &opts).unwrap();
    let jacobi = sym_eigen(&a).unwrap();
    assert_eq!(fallback.values, jacobi.values);
    assert_eq!(fallback.vectors.as_slice(), jacobi.vectors.as_slice());
}

#[test]
fn below_threshold_dispatch_is_jacobi_bit_for_bit() {
    let mut rng = Lcg(0x5eed);
    for n in [1usize, 2, 7, 31] {
        let a = rng.spd(n);
        let via_dispatch = SymEigen::decompose(&a).unwrap();
        let jacobi = sym_eigen(&a).unwrap();
        assert_eq!(via_dispatch.values, jacobi.values, "n={n}");
        assert_eq!(
            via_dispatch.vectors.as_slice(),
            jacobi.vectors.as_slice(),
            "n={n}"
        );
    }
}

#[test]
fn raw_dc_solver_handles_indefinite_symmetric_input() {
    // D&C is not restricted to positive definite input: mixed-sign
    // spectra exercise the negated secular branch at every merge.
    let mut rng = Lcg(0x7777);
    let values: Vec<f64> = (0..38).map(|k| (k as f64) - 18.5).collect();
    let a = rng.with_spectrum(&values);
    let eig = sym_eigen_dc(&a).unwrap();
    assert_represents(&eig, &a, 1e-10, "indefinite");
}

#[test]
fn tridiagonalization_round_trips_and_stays_orthogonal() {
    let mut rng = Lcg(0x1234);
    for n in [3usize, 16, 33, 60] {
        let a = rng.spd(n);
        let t = tridiagonalize(&a).unwrap();
        let scale = a.frobenius_norm().max(1.0);
        let recon = t.q.matmul(&t.dense_t()).matmul(&t.q.transpose());
        assert!(
            recon.max_abs_diff(&a) <= 1e-13 * scale,
            "n={n}: Q·T·Qᵀ off by {}",
            recon.max_abs_diff(&a)
        );
        assert!(
            t.q.gram().max_abs_diff(&Matrix::identity(n)) <= 1e-13,
            "n={n}: Q not orthogonal"
        );
    }
}

#[test]
fn decompose_rejects_malformed_input() {
    assert!(SymEigen::decompose(&Matrix::zeros(3, 4)).is_err());
    let mut a = Matrix::identity(40);
    a[(0, 1)] = f64::NAN;
    assert!(SymEigen::decompose(&a).is_err());
}
