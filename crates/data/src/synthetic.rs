//! Synthetic datasets from the paper.

use crate::dataset::{Dataset, LabelSet};
use sider_linalg::Matrix;
use sider_stats::Rng;

/// Generic Gaussian-mixture generator: one spherical blob per centroid.
///
/// `spec` holds `(centroid, sigma, count)` triples. Rows are emitted blob
/// by blob; the returned labels follow the spec order.
pub fn gaussian_mixture(spec: &[(Vec<f64>, f64, usize)], rng: &mut Rng) -> (Matrix, Vec<usize>) {
    assert!(!spec.is_empty(), "gaussian_mixture: empty spec");
    let d = spec[0].0.len();
    let n: usize = spec.iter().map(|s| s.2).sum();
    let mut m = Matrix::zeros(n, d);
    let mut labels = Vec::with_capacity(n);
    let mut row = 0;
    for (k, (center, sigma, count)) in spec.iter().enumerate() {
        assert_eq!(center.len(), d, "gaussian_mixture: ragged centroids");
        for _ in 0..*count {
            for j in 0..d {
                m[(row, j)] = rng.normal(center[j], *sigma);
            }
            labels.push(k);
            row += 1;
        }
    }
    (m, labels)
}

/// The 3-D introduction dataset (paper §I, Fig. 2): 150 points in four
/// clusters of 50/50/25/25. The two small clusters share their (X1, X2)
/// location and differ only in X3 (partially overlapping there), so the
/// first two principal components show *three* clusters of 50.
///
/// Scaling matters for the storyline: the A/B spread directions carry
/// second moment > 1 (informative against the unit-Gaussian prior, scores
/// ≈ 0.2 like the paper's 0.093) while the X3 split direction stays near
/// second moment 1 (score ≈ 1e−4), so the *initial* informative-PCA view
/// shows three clusters and the C/D split only surfaces after the user's
/// cluster constraints are absorbed — exactly the paper's Fig. 2 flow.
pub fn three_d_four_clusters(seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed);
    let n = 150;
    let mut m = Matrix::zeros(n, 3);
    let mut assignments = Vec::with_capacity(n);
    // (center, per-dim sigma, count)
    let spec: [([f64; 3], [f64; 3], usize); 4] = [
        ([2.6, 0.0, 0.0], [0.15, 0.15, 0.15], 50),   // A
        ([0.0, 2.6, 0.0], [0.15, 0.15, 0.15], 50),   // B
        ([0.0, 0.0, 1.35], [0.15, 0.15, 0.30], 25),  // C
        ([0.0, 0.0, -1.35], [0.15, 0.15, 0.30], 25), // D (overlaps C in X3 tails)
    ];
    let mut row = 0;
    for (k, (center, sigma, count)) in spec.iter().enumerate() {
        for _ in 0..*count {
            for j in 0..3 {
                m[(row, j)] = rng.normal(center[j], sigma[j]);
            }
            assignments.push(k);
            row += 1;
        }
    }
    let mut ds = Dataset::unlabeled("three-d-four-clusters", m);
    ds.labels.push(LabelSet {
        title: "cluster".into(),
        class_names: vec!["A".into(), "B".into(), "C".into(), "D".into()],
        assignments,
    });
    ds
}

/// The 5-D running example X̂₅ (paper §II, Fig. 3).
///
/// * Dimensions 1–3 hold four clusters A–D placed at `0`, `s·e₃`, `s·e₂`,
///   `s·e₁`: in **any** 2-D axis-aligned projection of dims 1–3, cluster A
///   coincides with one of B/C/D (the paper's defining property).
/// * Dimensions 4–5 hold three clusters E (`s·e₄`), F (`s·e₅`), G (origin).
/// * Coupling: a point in B/C/D belongs with 75 % probability to E or F
///   (uniformly); all remaining points (including all of A) are in G.
pub fn xhat5(n: usize, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed);
    let s = 2.0;
    let sigma = 0.25;
    let d = 5;
    let mut m = Matrix::zeros(n, d);
    let abcd_centers: [[f64; 3]; 4] = [
        [0.0, 0.0, 0.0], // A
        [0.0, 0.0, s],   // B
        [0.0, s, 0.0],   // C
        [s, 0.0, 0.0],   // D
    ];
    let efg_centers: [[f64; 2]; 3] = [
        [s, 0.0],   // E
        [0.0, s],   // F
        [0.0, 0.0], // G
    ];
    let mut abcd = Vec::with_capacity(n);
    let mut efg = Vec::with_capacity(n);
    for i in 0..n {
        let a = i % 4; // balanced A–D assignment
        let e = if a != 0 && rng.bernoulli(0.75) {
            if rng.bernoulli(0.5) {
                0
            } else {
                1
            }
        } else {
            2
        };
        for j in 0..3 {
            m[(i, j)] = rng.normal(abcd_centers[a][j], sigma);
        }
        for j in 0..2 {
            m[(i, 3 + j)] = rng.normal(efg_centers[e][j], sigma);
        }
        abcd.push(a);
        efg.push(e);
    }
    let mut ds = Dataset::unlabeled("xhat5", m);
    ds.labels.push(LabelSet {
        title: "dims-1-3".into(),
        class_names: vec!["A".into(), "B".into(), "C".into(), "D".into()],
        assignments: abcd,
    });
    ds.labels.push(LabelSet {
        title: "dims-4-5".into(),
        class_names: vec!["E".into(), "F".into(), "G".into()],
        assignments: efg,
    });
    ds
}

/// Dataset generator of the runtime experiment (paper §IV-A, Table II):
/// sample `k` cluster centroids, then allocate `n` points around them
/// (balanced), in `d` dimensions.
pub fn runtime_dataset(n: usize, d: usize, k: usize, seed: u64) -> Dataset {
    assert!(k >= 1, "runtime_dataset: k must be ≥ 1");
    let mut rng = Rng::seed_from_u64(seed);
    let centroids: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| rng.normal(0.0, 2.0)).collect())
        .collect();
    let mut m = Matrix::zeros(n, d);
    let mut assignments = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        for j in 0..d {
            m[(i, j)] = rng.normal(centroids[c][j], 0.5);
        }
        assignments.push(c);
    }
    let mut ds = Dataset::unlabeled(format!("runtime-n{n}-d{d}-k{k}"), m);
    ds.labels.push(LabelSet {
        title: "cluster".into(),
        class_names: (0..k).map(|c| format!("C{c}")).collect(),
        assignments,
    });
    ds
}

/// The adversarial 3×2 dataset of paper Fig. 5a / Eq. 11.
pub fn adversarial_toy() -> Matrix {
    Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sider_stats::descriptive::mean;

    #[test]
    fn three_d_dataset_shape_and_sizes() {
        let ds = three_d_four_clusters(2018);
        assert_eq!(ds.n(), 150);
        assert_eq!(ds.d(), 3);
        assert!(ds.validate().is_ok());
        let sizes = ds.primary_labels().unwrap().class_sizes();
        assert_eq!(sizes, vec![50, 50, 25, 25]);
    }

    #[test]
    fn small_clusters_overlap_only_in_x3() {
        let ds = three_d_four_clusters(1);
        let ls = ds.primary_labels().unwrap();
        let c = ls.class_indices(2);
        let d = ls.class_indices(3);
        // In (X1, X2) the C and D centroids coincide near the origin.
        for &set in &[&c, &d] {
            let x1: Vec<f64> = set.iter().map(|&i| ds.matrix[(i, 0)]).collect();
            let x2: Vec<f64> = set.iter().map(|&i| ds.matrix[(i, 1)]).collect();
            assert!(mean(&x1).abs() < 0.15);
            assert!(mean(&x2).abs() < 0.15);
        }
        // X3 separates them.
        let x3c: Vec<f64> = c.iter().map(|&i| ds.matrix[(i, 2)]).collect();
        let x3d: Vec<f64> = d.iter().map(|&i| ds.matrix[(i, 2)]).collect();
        assert!(mean(&x3c) > 1.0);
        assert!(mean(&x3d) < -1.0);
    }

    #[test]
    fn initial_informative_directions_are_the_ab_plane() {
        // The second moments along X1/X2 exceed 1 (cluster spread) while
        // X3 sits near 1: the initial score-sorted PCA view must be the
        // (X1, X2) plane — this is what makes the C/D split invisible at
        // first, as in paper Fig. 2a.
        let ds = three_d_four_clusters(2018);
        let sm = sider_stats::descriptive::second_moment(&ds.matrix);
        assert!(sm[(0, 0)] > 1.4, "X1 second moment {}", sm[(0, 0)]);
        assert!(sm[(1, 1)] > 1.4, "X2 second moment {}", sm[(1, 1)]);
        assert!(
            (sm[(2, 2)] - 1.0).abs() < 0.35,
            "X3 second moment {}",
            sm[(2, 2)]
        );
    }

    #[test]
    fn xhat5_hiding_property() {
        // In each axis-aligned pair of dims 1–3, cluster A's centroid must
        // coincide with exactly one of B/C/D.
        let ds = xhat5(1000, 42);
        assert_eq!(ds.n(), 1000);
        assert_eq!(ds.d(), 5);
        let ls = &ds.labels[0];
        let centroid = |class: usize, dim: usize| {
            let idx = ls.class_indices(class);
            let v: Vec<f64> = idx.iter().map(|&i| ds.matrix[(i, dim)]).collect();
            mean(&v)
        };
        for (d1, d2) in [(0, 1), (0, 2), (1, 2)] {
            let a = (centroid(0, d1), centroid(0, d2));
            let coincide = (1..4)
                .filter(|&cl| {
                    let c = (centroid(cl, d1), centroid(cl, d2));
                    ((a.0 - c.0).powi(2) + (a.1 - c.1).powi(2)).sqrt() < 0.2
                })
                .count();
            assert_eq!(coincide, 1, "dims ({d1},{d2})");
        }
    }

    #[test]
    fn xhat5_efg_coupling() {
        let ds = xhat5(4000, 7);
        let abcd = &ds.labels[0];
        let efg = &ds.labels[1];
        // A-points are all in G.
        for &i in &abcd.class_indices(0) {
            assert_eq!(efg.assignments[i], 2);
        }
        // B/C/D points: about 75 % in E∪F.
        let bcd: Vec<usize> = (0..ds.n()).filter(|&i| abcd.assignments[i] != 0).collect();
        let in_ef = bcd.iter().filter(|&&i| efg.assignments[i] != 2).count() as f64;
        let frac = in_ef / bcd.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn xhat5_validates() {
        assert!(xhat5(100, 3).validate().is_ok());
    }

    #[test]
    fn runtime_dataset_properties() {
        let ds = runtime_dataset(256, 8, 4, 11);
        assert_eq!(ds.n(), 256);
        assert_eq!(ds.d(), 8);
        let sizes = ds.primary_labels().unwrap().class_sizes();
        assert_eq!(sizes, vec![64; 4]);
        assert!(ds.validate().is_ok());
    }

    #[test]
    fn runtime_dataset_k1_single_blob() {
        let ds = runtime_dataset(100, 3, 1, 5);
        assert_eq!(ds.primary_labels().unwrap().n_classes(), 1);
    }

    #[test]
    fn runtime_dataset_deterministic() {
        let a = runtime_dataset(64, 4, 2, 9);
        let b = runtime_dataset(64, 4, 2, 9);
        assert!(a.matrix.max_abs_diff(&b.matrix) == 0.0);
    }

    #[test]
    fn adversarial_matches_eq11() {
        let m = adversarial_toy();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn gaussian_mixture_blob_means() {
        let mut rng = Rng::seed_from_u64(3);
        let (m, labels) = gaussian_mixture(
            &[(vec![5.0, 0.0], 0.1, 200), (vec![-5.0, 0.0], 0.1, 100)],
            &mut rng,
        );
        assert_eq!(m.rows(), 300);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 200);
        let blob0: Vec<f64> = (0..200).map(|i| m[(i, 0)]).collect();
        assert!((mean(&blob0) - 5.0).abs() < 0.05);
    }
}
