//! Minimal CSV reading/writing for matrices and experiment outputs.
//!
//! Deliberately tiny: comma separator, no quoting (our column names never
//! contain commas), header row with column names. Enough to export every
//! experiment table and reload it.

use sider_linalg::Matrix;
use std::io::{self, BufRead, Write};

/// Write a matrix with a header row.
pub fn write_matrix<W: Write>(out: &mut W, header: &[String], matrix: &Matrix) -> io::Result<()> {
    assert_eq!(header.len(), matrix.cols(), "csv: header/column mismatch");
    writeln!(out, "{}", header.join(","))?;
    for i in 0..matrix.rows() {
        let row: Vec<String> = matrix.row(i).iter().map(|v| format!("{v}")).collect();
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Serialize to a string.
pub fn matrix_to_string(header: &[String], matrix: &Matrix) -> String {
    let mut buf = Vec::new();
    write_matrix(&mut buf, header, matrix).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("csv output is UTF-8")
}

/// Parse a CSV with a header row into `(header, matrix)`.
pub fn read_matrix<R: BufRead>(input: R) -> io::Result<(Vec<String>, Matrix)> {
    let mut lines = input.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))??;
    let header: Vec<String> = header_line
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let d = header.len();
    let mut data: Vec<f64> = Vec::new();
    let mut rows = 0;
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != d {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: {} fields, expected {}",
                    lineno + 2,
                    fields.len(),
                    d
                ),
            ));
        }
        for f in fields {
            let v: f64 = f.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number {f:?}: {e}", lineno + 2),
                )
            })?;
            data.push(v);
        }
        rows += 1;
    }
    Ok((header, Matrix::from_vec(rows, d, data)))
}

/// Parse from a string.
pub fn matrix_from_string(s: &str) -> io::Result<(Vec<String>, Matrix)> {
    read_matrix(io::BufReader::new(s.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.5], vec![-3.0, 0.125]]);
        let header = vec!["a".to_string(), "b".to_string()];
        let s = matrix_to_string(&header, &m);
        let (h2, m2) = matrix_from_string(&s).unwrap();
        assert_eq!(h2, header);
        assert_eq!(m2.max_abs_diff(&m), 0.0);
    }

    #[test]
    fn header_first_line() {
        let m = Matrix::from_rows(&[vec![1.0]]);
        let s = matrix_to_string(&["col".to_string()], &m);
        assert!(s.starts_with("col\n"));
    }

    #[test]
    fn skips_blank_lines() {
        let (h, m) = matrix_from_string("x,y\n1,2\n\n3,4\n").unwrap();
        assert_eq!(h, vec!["x", "y"]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(matrix_from_string("x,y\n1,2,3\n").is_err());
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(matrix_from_string("x\nfoo\n").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matrix_from_string("").is_err());
    }

    #[test]
    fn preserves_precision() {
        let m = Matrix::from_rows(&[vec![std::f64::consts::PI]]);
        let s = matrix_to_string(&["pi".to_string()], &m);
        let (_, m2) = matrix_from_string(&s).unwrap();
        assert_eq!(m2[(0, 0)], std::f64::consts::PI);
    }
}
