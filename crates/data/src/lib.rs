//! Datasets for the SIDER reproduction.
//!
//! Every dataset used in the paper's examples and evaluation (§I, §II,
//! §IV) is generated here:
//!
//! * [`synthetic::three_d_four_clusters`] — the 3-D, 150-point
//!   introduction example (Fig. 2): three clusters visible in the first
//!   two principal components, one of which splits in a later view.
//! * [`synthetic::xhat5`] — the 5-D running example X̂₅ (Fig. 3): four
//!   clusters A–D in dimensions 1–3 arranged so any axis pair hides one,
//!   three clusters E–G in dimensions 4–5, 75 % membership coupling.
//! * [`synthetic::runtime_dataset`] — the Table II scalability grid
//!   generator (k sampled centroids, points allocated around them).
//! * [`synthetic::adversarial_toy`] — the 3×2 dataset of Fig. 5 / Eq. 11.
//! * [`bnc`] — a *simulator* of the British National Corpus use case
//!   (§IV-B): the real corpus is license-restricted, so we generate word
//!   counts from a genre-tilted Zipf model that reproduces the cluster
//!   geometry the experiment depends on (see DESIGN.md §1 for the
//!   substitution argument).
//! * [`segmentation`] — a simulator of the UCI Image Segmentation use
//!   case (§IV-C) with the same shape: heterogeneous attribute scales,
//!   one pure class (`sky`), one near-pure class (`grass`), a five-class
//!   blob, and a few heavy outliers.
//!
//! All generators are deterministic given a seed.

// Indexed `for` loops are the dominant idiom in this crate's numeric
// kernels, where several arrays are indexed in lockstep and the index is
// part of the math; iterator rewrites obscure it.
#![allow(clippy::needless_range_loop)]

pub mod bnc;
pub mod csv;
pub mod dataset;
pub mod segmentation;
pub mod synthetic;

pub use dataset::{Dataset, LabelSet};
