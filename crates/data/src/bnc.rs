//! Simulator of the British National Corpus use case (paper §IV-B).
//!
//! The paper computes a vector-space model from the first 2000 words of
//! each of 1335 texts in the four main BNC genres and keeps the 100
//! highest-count words as dimensions. The BNC itself is license-restricted
//! and cannot be bundled, so this module generates a corpus with the same
//! *geometry* (see DESIGN.md for the substitution argument):
//!
//! * word frequencies follow a Zipf law, as in natural language;
//! * each genre tilts word probabilities through a latent-space model:
//!   genre `g` has an embedding `γ_g`, word `w` an embedding `u_w`, and
//!   the probability of `w` in a text of genre `g` is
//!   `∝ zipf(w) · exp(u_wᵀ(γ_g + ε_text))`;
//! * embeddings are chosen so that **transcribed conversations** are far
//!   from everything (the paper's first selection has Jaccard 0.928 to
//!   that class) while **academic prose** and **broadsheet newspaper**
//!   overlap (their joint selection scores 0.63/0.35), with **prose
//!   fiction** in between.

use crate::dataset::{Dataset, LabelSet};
use sider_linalg::Matrix;
use sider_stats::Rng;

/// The four main BNC genres used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Genre {
    ProseFiction,
    TranscribedConversations,
    BroadsheetNewspaper,
    AcademicProse,
}

impl Genre {
    /// All genres, in label order.
    pub const ALL: [Genre; 4] = [
        Genre::ProseFiction,
        Genre::TranscribedConversations,
        Genre::BroadsheetNewspaper,
        Genre::AcademicProse,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Genre::ProseFiction => "prose fiction",
            Genre::TranscribedConversations => "transcribed conversations",
            Genre::BroadsheetNewspaper => "broadsheet newspaper",
            Genre::AcademicProse => "academic prose",
        }
    }

    /// Latent-space embedding controlling word-probability tilts.
    /// Conversations sit alone on the first axis; academic and broadsheet
    /// share the second axis (differing only slightly on the third);
    /// fiction points the other way.
    fn embedding(&self) -> [f64; 3] {
        match self {
            Genre::TranscribedConversations => [3.0, 0.0, 0.0],
            Genre::AcademicProse => [0.0, 1.8, 0.45],
            Genre::BroadsheetNewspaper => [0.0, 1.8, -0.45],
            Genre::ProseFiction => [0.0, -1.6, 0.0],
        }
    }
}

/// Options for the corpus simulator.
#[derive(Debug, Clone)]
pub struct BncOpts {
    /// Texts per genre, in [`Genre::ALL`] order. Paper total: 1335.
    pub texts_per_genre: [usize; 4],
    /// Vocabulary size before keeping the top words.
    pub vocabulary: usize,
    /// Tokens drawn per text ("the first 2000 words of each text").
    pub tokens_per_text: usize,
    /// Dimensions kept ("the 100 words with highest counts").
    pub top_words: usize,
    /// Zipf exponent of the base frequencies.
    pub zipf_exponent: f64,
    /// Standard deviation of word embeddings (genre distinctiveness).
    pub word_embedding_sd: f64,
    /// Standard deviation of the per-text jitter added to the genre
    /// embedding (within-genre spread).
    pub text_jitter_sd: f64,
}

impl Default for BncOpts {
    fn default() -> Self {
        BncOpts {
            // 476 + 153 + 418 + 288 = 1335 texts, the paper's total.
            texts_per_genre: [476, 153, 418, 288],
            vocabulary: 1000,
            tokens_per_text: 2000,
            top_words: 100,
            zipf_exponent: 1.05,
            word_embedding_sd: 0.35,
            text_jitter_sd: 0.25,
        }
    }
}

/// Generate the BNC-like corpus: a word-count matrix of shape
/// `(Σ texts) × top_words` with a genre labeling.
pub fn bnc_like_corpus(opts: &BncOpts, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed);
    let v = opts.vocabulary;
    assert!(opts.top_words <= v, "top_words exceeds vocabulary");

    // Base Zipf weights.
    let base: Vec<f64> = (0..v)
        .map(|r| 1.0 / ((r + 1) as f64).powf(opts.zipf_exponent))
        .collect();
    // Word embeddings.
    let word_emb: Vec<[f64; 3]> = (0..v)
        .map(|_| {
            [
                rng.normal(0.0, opts.word_embedding_sd),
                rng.normal(0.0, opts.word_embedding_sd),
                rng.normal(0.0, opts.word_embedding_sd),
            ]
        })
        .collect();

    let n: usize = opts.texts_per_genre.iter().sum();
    let mut counts = Matrix::zeros(n, v);
    let mut assignments = Vec::with_capacity(n);
    let mut row = 0;
    for (g_idx, genre) in Genre::ALL.iter().enumerate() {
        let gamma = genre.embedding();
        for _ in 0..opts.texts_per_genre[g_idx] {
            // Per-text topic vector = genre embedding + jitter.
            let t = [
                gamma[0] + rng.normal(0.0, opts.text_jitter_sd),
                gamma[1] + rng.normal(0.0, opts.text_jitter_sd),
                gamma[2] + rng.normal(0.0, opts.text_jitter_sd),
            ];
            // Unnormalized word probabilities, then a CDF for fast sampling.
            let mut cdf = Vec::with_capacity(v);
            let mut acc = 0.0;
            for w in 0..v {
                let u = &word_emb[w];
                let tilt = (u[0] * t[0] + u[1] * t[1] + u[2] * t[2]).exp();
                acc += base[w] * tilt;
                cdf.push(acc);
            }
            let total = acc;
            for _ in 0..opts.tokens_per_text {
                let target = rng.uniform() * total;
                let w = cdf.partition_point(|&c| c < target).min(v - 1);
                counts[(row, w)] += 1.0;
            }
            assignments.push(g_idx);
            row += 1;
        }
    }

    // Keep the `top_words` globally most frequent words as dimensions.
    let totals: Vec<f64> = (0..v)
        .map(|w| (0..n).map(|i| counts[(i, w)]).sum())
        .collect();
    let mut order: Vec<usize> = (0..v).collect();
    order.sort_by(|&a, &b| totals[b].partial_cmp(&totals[a]).unwrap());
    let kept = &order[..opts.top_words];
    let mut matrix = Matrix::zeros(n, opts.top_words);
    let mut column_names = Vec::with_capacity(opts.top_words);
    for (j, &w) in kept.iter().enumerate() {
        for i in 0..n {
            matrix[(i, j)] = counts[(i, w)];
        }
        column_names.push(format!("w{w}"));
    }

    Dataset {
        name: "bnc-like".into(),
        matrix,
        column_names,
        labels: vec![LabelSet {
            title: "genre".into(),
            class_names: Genre::ALL.iter().map(|g| g.name().to_string()).collect(),
            assignments,
        }],
    }
}

/// Small preset for tests (fast to generate, same geometry).
pub fn bnc_small(seed: u64) -> Dataset {
    bnc_like_corpus(
        &BncOpts {
            texts_per_genre: [60, 20, 52, 36],
            vocabulary: 300,
            tokens_per_text: 500,
            top_words: 40,
            ..BncOpts::default()
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sider_stats::descriptive::mean;

    #[test]
    fn corpus_shape_and_labels() {
        let ds = bnc_small(1);
        assert_eq!(ds.n(), 168);
        assert_eq!(ds.d(), 40);
        assert!(ds.validate().is_ok());
        let ls = ds.primary_labels().unwrap();
        assert_eq!(ls.class_sizes(), vec![60, 20, 52, 36]);
        assert_eq!(ls.class_names[1], "transcribed conversations");
    }

    #[test]
    fn counts_sum_to_at_most_tokens() {
        // Kept columns are a subset of the vocabulary, so row sums are
        // ≤ tokens_per_text but close for top words.
        let ds = bnc_small(2);
        for i in 0..ds.n() {
            let row_sum: f64 = ds.matrix.row(i).iter().sum();
            assert!(row_sum <= 500.0 + 1e-9);
            assert!(row_sum > 100.0, "top words should dominate, got {row_sum}");
        }
    }

    #[test]
    fn counts_are_non_negative_integers() {
        let ds = bnc_small(3);
        for &v in ds.matrix.as_slice() {
            assert!(v >= 0.0);
            assert_eq!(v, v.round());
        }
    }

    #[test]
    fn conversations_are_most_distinctive_genre() {
        // Mean per-class centroid distances: conversations should be the
        // farthest (in standardized space) from every other genre, while
        // academic and broadsheet are the closest pair.
        let ds = bnc_small(4).standardized();
        let ls = ds.primary_labels().unwrap().clone();
        let centroid = |class: usize| -> Vec<f64> {
            let idx = ls.class_indices(class);
            (0..ds.d())
                .map(|j| {
                    let vals: Vec<f64> = idx.iter().map(|&i| ds.matrix[(i, j)]).collect();
                    mean(&vals)
                })
                .collect()
        };
        let cents: Vec<Vec<f64>> = (0..4).map(centroid).collect();
        let dist = |a: usize, b: usize| -> f64 {
            cents[a]
                .iter()
                .zip(&cents[b])
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        // Pair distances: 1 = conversations.
        let conv_min = [0, 2, 3]
            .iter()
            .map(|&g| dist(1, g))
            .fold(f64::INFINITY, f64::min);
        let acad_broad = dist(2, 3);
        let all_pairs = [
            dist(0, 2),
            dist(0, 3),
            dist(0, 1),
            dist(1, 2),
            dist(1, 3),
            acad_broad,
        ];
        let max_other = all_pairs.iter().cloned().fold(0.0, f64::max);
        assert!(conv_min * 1.2 > max_other, "conversations not distinctive");
        // Academic vs broadsheet is the closest pair.
        let min_pair = all_pairs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (acad_broad - min_pair).abs() < 1e-12,
            "acad/broad should overlap most"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = bnc_small(9);
        let b = bnc_small(9);
        assert_eq!(a.matrix.max_abs_diff(&b.matrix), 0.0);
        let c = bnc_small(10);
        assert!(a.matrix.max_abs_diff(&c.matrix) > 0.0);
    }

    #[test]
    fn default_opts_match_paper_totals() {
        let o = BncOpts::default();
        assert_eq!(o.texts_per_genre.iter().sum::<usize>(), 1335);
        assert_eq!(o.tokens_per_text, 2000);
        assert_eq!(o.top_words, 100);
    }
}
