//! Simulator of the UCI Image Segmentation use case (paper §IV-C).
//!
//! The real dataset (2310 rows, 19 attributes, 7 outdoor-image classes)
//! cannot be downloaded offline, so this generator reproduces the
//! properties the experiment depends on:
//!
//! * **Heterogeneous raw scales** — centroid coordinates are O(100),
//!   color means O(10), saturation/hue O(1) — so the initial unit-Gaussian
//!   background wildly mismatches the data (Fig. 9a) until a 1-cluster
//!   constraint is added.
//! * **`sky` is linearly separated** (the paper's first selection is 330
//!   pure sky points), **`grass` nearly so** (Jaccard 0.964), and the
//!   remaining five classes (`brickface`, `cement`, `foliage`, `path`,
//!   `window`) form one overlapping blob (Jaccard ≈ 0.2 each).
//! * A few rows carry **extreme outlier values** in the edge-statistics
//!   attributes, which surface in the final projection (Fig. 9f).

use crate::dataset::{Dataset, LabelSet};
use sider_linalg::Matrix;
use sider_stats::Rng;

/// The 7 classes of the UCI dataset, in label order.
pub const CLASSES: [&str; 7] = [
    "brickface",
    "sky",
    "foliage",
    "cement",
    "window",
    "path",
    "grass",
];

/// The 19 attributes of the UCI dataset.
pub const ATTRIBUTES: [&str; 19] = [
    "region-centroid-col",
    "region-centroid-row",
    "region-pixel-count",
    "short-line-density-5",
    "short-line-density-2",
    "vedge-mean",
    "vedge-sd",
    "hedge-mean",
    "hedge-sd",
    "intensity-mean",
    "rawred-mean",
    "rawblue-mean",
    "rawgreen-mean",
    "exred-mean",
    "exblue-mean",
    "exgreen-mean",
    "value-mean",
    "saturation-mean",
    "hue-mean",
];

/// Options for the generator.
#[derive(Debug, Clone)]
pub struct SegmentationOpts {
    /// Rows per class (paper: 330 each, 2310 total).
    pub per_class: usize,
    /// Number of outlier rows injected into the middle-blob classes.
    pub n_outliers: usize,
}

impl Default for SegmentationOpts {
    fn default() -> Self {
        SegmentationOpts {
            per_class: 330,
            n_outliers: 12,
        }
    }
}

/// Class-mean table: `means[class][attribute]`, chosen to reproduce the
/// separation structure described in the module docs. Values are loosely
/// modeled on the real data's ranges.
fn class_means(class: usize) -> [f64; 19] {
    match class {
        // brickface
        0 => [
            125.0, 125.0, 9.0, 0.1, 0.05, 1.2, 0.8, 1.5, 1.0, 20.0, 18.0, 22.0, 20.0, -2.0, 4.0,
            -2.0, 22.0, 0.35, -2.0,
        ],
        // sky — far away: top of image, very bright, blue-dominant.
        1 => [
            125.0, 35.0, 9.0, 0.0, 0.0, 0.3, 0.2, 0.4, 0.3, 120.0, 110.0, 135.0, 115.0, -25.0,
            45.0, -20.0, 135.0, 0.15, -1.8,
        ],
        // foliage
        2 => [
            120.0, 140.0, 9.0, 0.12, 0.06, 1.8, 1.4, 2.0, 1.5, 12.0, 10.0, 14.0, 12.0, -3.0, 5.0,
            -2.0, 14.0, 0.55, -2.1,
        ],
        // cement
        3 => [
            130.0, 130.0, 9.0, 0.08, 0.04, 1.5, 1.0, 1.7, 1.2, 32.0, 30.0, 35.0, 31.0, -2.5, 5.5,
            -3.0, 35.0, 0.25, -2.1,
        ],
        // window
        4 => [
            122.0, 128.0, 9.0, 0.09, 0.05, 1.0, 0.7, 1.2, 0.9, 18.0, 16.0, 21.0, 17.0, -2.2, 5.0,
            -2.8, 21.0, 0.3, -2.0,
        ],
        // path
        5 => [
            128.0, 135.0, 9.0, 0.11, 0.05, 1.6, 1.1, 1.8, 1.3, 28.0, 27.0, 30.0, 27.0, -1.8, 4.5,
            -2.7, 30.0, 0.28, -2.05,
        ],
        // grass — bottom of image, green-dominant: nearly separable.
        6 => [
            125.0, 210.0, 9.0, 0.05, 0.02, 0.9, 0.6, 1.1, 0.8, 25.0, 18.0, 20.0, 37.0, -8.0, -6.0,
            14.0, 37.0, 0.65, 2.2,
        ],
        _ => unreachable!("only 7 classes"),
    }
}

/// Class-sd table (same structure). `sky` and `grass` are tight; the
/// middle classes are broad so they overlap.
fn class_sds(class: usize) -> [f64; 19] {
    let broad = [
        60.0, 25.0, 0.01, 0.08, 0.05, 0.9, 0.7, 1.0, 0.8, 8.0, 8.0, 8.0, 8.0, 2.0, 2.5, 2.5, 8.0,
        0.15, 0.4,
    ];
    match class {
        1 => [
            60.0, 12.0, 0.01, 0.01, 0.01, 0.15, 0.1, 0.2, 0.15, 8.0, 8.0, 8.0, 8.0, 3.0, 4.0, 3.0,
            8.0, 0.05, 0.15,
        ],
        6 => [
            60.0, 14.0, 0.01, 0.03, 0.02, 0.4, 0.3, 0.5, 0.4, 5.0, 4.0, 4.0, 5.0, 2.0, 2.0, 2.5,
            5.0, 0.08, 0.25,
        ],
        _ => broad,
    }
}

/// Generate the segmentation-like dataset.
pub fn segmentation_like(opts: &SegmentationOpts, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed);
    let n = opts.per_class * 7;
    let d = 19;
    let mut m = Matrix::zeros(n, d);
    let mut assignments = Vec::with_capacity(n);
    let mut row = 0;
    for class in 0..7 {
        let means = class_means(class);
        let sds = class_sds(class);
        for _ in 0..opts.per_class {
            for j in 0..d {
                m[(row, j)] = rng.normal(means[j], sds[j]);
            }
            // Pixel count is constant 9 in the real data (3×3 regions).
            m[(row, 2)] = 9.0;
            assignments.push(class);
            row += 1;
        }
    }
    // Inject outliers into middle-blob rows: extreme edge statistics
    // (the real data's vedge-sd/hedge-sd have huge outliers).
    let middle: Vec<usize> = (0..n)
        .filter(|&i| ![1usize, 6].contains(&assignments[i]))
        .collect();
    let mut outlier_flags = vec![0usize; n];
    for k in 0..opts.n_outliers.min(middle.len()) {
        let i = middle[(k * middle.len()) / opts.n_outliers.max(1)];
        let factor = 40.0 + 20.0 * rng.uniform();
        m[(i, 6)] = m[(i, 6)].abs() * factor; // vedge-sd
        m[(i, 8)] = m[(i, 8)].abs() * factor; // hedge-sd
        outlier_flags[i] = 1;
    }
    Dataset {
        name: "segmentation-like".into(),
        matrix: m,
        column_names: ATTRIBUTES.iter().map(|s| s.to_string()).collect(),
        labels: vec![
            LabelSet {
                title: "class".into(),
                class_names: CLASSES.iter().map(|s| s.to_string()).collect(),
                assignments,
            },
            LabelSet {
                title: "outlier".into(),
                class_names: vec!["normal".into(), "outlier".into()],
                assignments: outlier_flags,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sider_stats::descriptive::column_stats;

    #[test]
    fn shape_matches_uci() {
        let ds = segmentation_like(&SegmentationOpts::default(), 1);
        assert_eq!(ds.n(), 2310);
        assert_eq!(ds.d(), 19);
        assert!(ds.validate().is_ok());
        assert_eq!(ds.primary_labels().unwrap().class_sizes(), vec![330; 7]);
    }

    #[test]
    fn scales_are_heterogeneous() {
        let ds = segmentation_like(&SegmentationOpts::default(), 2);
        let stats = column_stats(&ds.matrix);
        // Centroid row/col O(100); saturation O(0.1): ratio > 100.
        let big = stats[0].mean.abs().max(stats[1].mean.abs());
        let small = stats[17].mean.abs();
        assert!(big / small > 100.0, "big {big} small {small}");
    }

    #[test]
    fn sky_is_linearly_separated_in_intensity() {
        let ds = segmentation_like(&SegmentationOpts::default(), 3);
        let ls = ds.primary_labels().unwrap();
        let sky = ls.class_indices(1);
        let sky_min = sky
            .iter()
            .map(|&i| ds.matrix[(i, 9)])
            .fold(f64::INFINITY, f64::min);
        let others_max = (0..ds.n())
            .filter(|&i| ls.assignments[i] != 1)
            .map(|i| ds.matrix[(i, 9)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(sky_min > others_max, "sky {sky_min} vs rest {others_max}");
    }

    #[test]
    fn grass_mostly_separated_in_centroid_row() {
        let ds = segmentation_like(&SegmentationOpts::default(), 4);
        let ls = ds.primary_labels().unwrap();
        let grass = ls.class_indices(6);
        // Count grass rows below the middle-blob maximum: a small overlap
        // is intended (Jaccard 0.964, not 1.0).
        let others_p99 = {
            let mut v: Vec<f64> = (0..ds.n())
                .filter(|&i| ls.assignments[i] != 6)
                .map(|i| ds.matrix[(i, 1)])
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[(v.len() as f64 * 0.99) as usize]
        };
        let separated = grass
            .iter()
            .filter(|&&i| ds.matrix[(i, 1)] > others_p99)
            .count() as f64;
        let frac = separated / grass.len() as f64;
        assert!(frac > 0.85 && frac < 1.0, "frac {frac}");
    }

    #[test]
    fn outliers_present_in_edge_stats() {
        let ds = segmentation_like(&SegmentationOpts::default(), 5);
        let col = ds.matrix.col(6); // vedge-sd
        let mut sorted = col.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        assert!(max > 20.0 * p50.abs().max(0.1), "max {max} median {p50}");
    }

    #[test]
    fn pixel_count_constant() {
        let ds = segmentation_like(&SegmentationOpts::default(), 6);
        assert!(ds.matrix.col(2).iter().all(|&v| v == 9.0));
    }

    #[test]
    fn small_preset_is_fast_and_valid() {
        let ds = segmentation_like(
            &SegmentationOpts {
                per_class: 30,
                n_outliers: 3,
            },
            7,
        );
        assert_eq!(ds.n(), 210);
        assert!(ds.validate().is_ok());
    }
}
