//! Labeled dataset container.

use sider_linalg::Matrix;
use sider_stats::descriptive;
use sider_stats::Rng;

/// One labeling of the rows (datasets can carry several, e.g. X̂₅ has the
/// A–D clusters of dims 1–3 and the E–G clusters of dims 4–5).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelSet {
    /// What this labeling describes ("genre", "cluster-123", …).
    pub title: String,
    /// Display name per class id.
    pub class_names: Vec<String>,
    /// Class id per row.
    pub assignments: Vec<usize>,
}

impl LabelSet {
    /// Indices of rows in class `c`.
    pub fn class_indices(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Per-class sizes.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.n_classes()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// A data matrix with column names and zero or more labelings.
///
/// Labels are ground truth used *only* for evaluation (Jaccard indices in
/// the use cases) — never shown to the algorithm, matching the paper:
/// "we did not provide the class labels in advance, they were only used
/// retrospectively".
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name for reports.
    pub name: String,
    /// The `n × d` data matrix.
    pub matrix: Matrix,
    /// Column names (length `d`).
    pub column_names: Vec<String>,
    /// Row labelings (possibly empty).
    pub labels: Vec<LabelSet>,
}

impl Dataset {
    /// Build an unlabeled dataset with default column names `X1…Xd`.
    pub fn unlabeled(name: impl Into<String>, matrix: Matrix) -> Self {
        let d = matrix.cols();
        Dataset {
            name: name.into(),
            matrix,
            column_names: (1..=d).map(|j| format!("X{j}")).collect(),
            labels: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of columns.
    pub fn d(&self) -> usize {
        self.matrix.cols()
    }

    /// The first labeling, if any.
    pub fn primary_labels(&self) -> Option<&LabelSet> {
        self.labels.first()
    }

    /// Standardize columns to zero mean / unit variance (returns a copy;
    /// constant columns are centered only).
    pub fn standardized(&self) -> Dataset {
        let (m, _) = descriptive::standardize(&self.matrix);
        Dataset {
            name: format!("{}-standardized", self.name),
            matrix: m,
            column_names: self.column_names.clone(),
            labels: self.labels.clone(),
        }
    }

    /// Random row subsample of size `k` (labels subsampled consistently).
    pub fn subsample(&self, k: usize, rng: &mut Rng) -> Dataset {
        let k = k.min(self.n());
        let mut idx = rng.sample_indices(self.n(), k);
        idx.sort_unstable();
        self.select_rows(&idx)
    }

    /// Replicate every row `copies` times with iid Gaussian noise of the
    /// given standard deviation — the paper's proposed fix for the slow
    /// harmonic convergence of overlapping zero-variance constraints
    /// (§II-A-2): "replicate each data point 10 times with random noise
    /// added to each replicate. When a data point would be selected to a
    /// constraint then all of its replicates would be included as well.
    /// This would set a lower limit on the variance of the background
    /// model and hence, be expected to speed up the convergence."
    ///
    /// Returns the expanded dataset together with, per original row, the
    /// indices of its replicates (to expand selections as the paper
    /// prescribes). Labels are replicated alongside.
    pub fn replicate_with_noise(
        &self,
        copies: usize,
        sigma: f64,
        rng: &mut Rng,
    ) -> (Dataset, Vec<Vec<usize>>) {
        assert!(copies >= 1, "replicate_with_noise: copies must be ≥ 1");
        let (n, d) = self.matrix.shape();
        let mut m = Matrix::zeros(n * copies, d);
        let mut groups = Vec::with_capacity(n);
        let mut row_out = 0;
        for i in 0..n {
            let mut group = Vec::with_capacity(copies);
            for _ in 0..copies {
                for j in 0..d {
                    m[(row_out, j)] = self.matrix[(i, j)] + rng.normal(0.0, sigma);
                }
                group.push(row_out);
                row_out += 1;
            }
            groups.push(group);
        }
        let labels = self
            .labels
            .iter()
            .map(|ls| LabelSet {
                title: ls.title.clone(),
                class_names: ls.class_names.clone(),
                assignments: ls
                    .assignments
                    .iter()
                    .flat_map(|&a| std::iter::repeat_n(a, copies))
                    .collect(),
            })
            .collect();
        (
            Dataset {
                name: format!("{}-x{copies}", self.name),
                matrix: m,
                column_names: self.column_names.clone(),
                labels,
            },
            groups,
        )
    }

    /// Restrict to the given row indices.
    pub fn select_rows(&self, idx: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            matrix: self.matrix.select_rows(idx),
            column_names: self.column_names.clone(),
            labels: self
                .labels
                .iter()
                .map(|ls| LabelSet {
                    title: ls.title.clone(),
                    class_names: ls.class_names.clone(),
                    assignments: idx.iter().map(|&i| ls.assignments[i]).collect(),
                })
                .collect(),
        }
    }

    /// Sanity check: finite matrix, consistent label/column lengths.
    pub fn validate(&self) -> Result<(), String> {
        if !self.matrix.is_finite() {
            return Err("matrix contains non-finite values".into());
        }
        if self.column_names.len() != self.d() {
            return Err(format!(
                "{} column names for {} columns",
                self.column_names.len(),
                self.d()
            ));
        }
        for ls in &self.labels {
            if ls.assignments.len() != self.n() {
                return Err(format!(
                    "label set '{}' has {} assignments for {} rows",
                    ls.title,
                    ls.assignments.len(),
                    self.n()
                ));
            }
            if let Some(&max) = ls.assignments.iter().max() {
                if max >= ls.class_names.len() {
                    return Err(format!(
                        "label set '{}' uses class id {} beyond {} names",
                        ls.title,
                        max,
                        ls.class_names.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let m = Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ]);
        let mut ds = Dataset::unlabeled("test", m);
        ds.labels.push(LabelSet {
            title: "halves".into(),
            class_names: vec!["lo".into(), "hi".into()],
            assignments: vec![0, 0, 1, 1],
        });
        ds
    }

    #[test]
    fn construction_and_shape() {
        let ds = sample();
        assert_eq!(ds.n(), 4);
        assert_eq!(ds.d(), 2);
        assert_eq!(ds.column_names, vec!["X1", "X2"]);
        assert!(ds.validate().is_ok());
    }

    #[test]
    fn label_set_queries() {
        let ds = sample();
        let ls = ds.primary_labels().unwrap();
        assert_eq!(ls.class_indices(1), vec![2, 3]);
        assert_eq!(ls.n_classes(), 2);
        assert_eq!(ls.class_sizes(), vec![2, 2]);
    }

    #[test]
    fn standardized_columns_have_unit_variance() {
        let ds = sample().standardized();
        let stats = sider_stats::descriptive::column_stats(&ds.matrix);
        for cs in stats {
            assert!(cs.mean.abs() < 1e-12);
            assert!((cs.sd - 1.0).abs() < 1e-12);
        }
        // Labels preserved.
        assert_eq!(ds.labels.len(), 1);
    }

    #[test]
    fn select_rows_remaps_labels() {
        let ds = sample().select_rows(&[1, 3]);
        assert_eq!(ds.n(), 2);
        assert_eq!(ds.labels[0].assignments, vec![0, 1]);
    }

    #[test]
    fn subsample_is_consistent() {
        let ds = sample();
        let mut rng = Rng::seed_from_u64(5);
        let sub = ds.subsample(3, &mut rng);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.labels[0].assignments.len(), 3);
        // Each subsampled row matches its label from the original.
        for i in 0..sub.n() {
            let x = sub.matrix[(i, 0)];
            let orig_row = (x - 1.0) as usize;
            assert_eq!(
                sub.labels[0].assignments[i],
                ds.labels[0].assignments[orig_row]
            );
        }
    }

    #[test]
    fn replicate_with_noise_expands_rows_and_labels() {
        let ds = sample();
        let mut rng = Rng::seed_from_u64(7);
        let (big, groups) = ds.replicate_with_noise(3, 0.01, &mut rng);
        assert_eq!(big.n(), 12);
        assert!(big.validate().is_ok());
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0], vec![0, 1, 2]);
        // Replicates jitter around their source.
        for (i, group) in groups.iter().enumerate() {
            for &r in group {
                assert!((big.matrix[(r, 0)] - ds.matrix[(i, 0)]).abs() < 0.1);
                assert_eq!(big.labels[0].assignments[r], ds.labels[0].assignments[i]);
            }
        }
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut ds = sample();
        ds.labels[0].assignments.pop();
        assert!(ds.validate().is_err());

        let mut ds2 = sample();
        ds2.labels[0].assignments[0] = 9;
        assert!(ds2.validate().is_err());

        let mut ds3 = sample();
        ds3.matrix[(0, 0)] = f64::NAN;
        assert!(ds3.validate().is_err());
    }
}
