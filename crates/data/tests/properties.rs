//! Property-based tests for the dataset generators and CSV I/O.

use proptest::prelude::*;
use sider_data::csv;
use sider_data::synthetic::{runtime_dataset, three_d_four_clusters, xhat5};
use sider_linalg::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generators_always_produce_valid_datasets(seed in 0u64..10_000) {
        let a = three_d_four_clusters(seed);
        prop_assert!(a.validate().is_ok());
        prop_assert_eq!(a.n(), 150);

        let b = xhat5(200, seed);
        prop_assert!(b.validate().is_ok());
        prop_assert_eq!(b.labels.len(), 2);

        let c = runtime_dataset(64, 4, 3, seed);
        prop_assert!(c.validate().is_ok());
    }

    #[test]
    fn runtime_dataset_balanced_for_any_params(
        seed in 0u64..1000,
        k in 1usize..6,
        d in 1usize..6,
    ) {
        let n = 60;
        let ds = runtime_dataset(n, d, k, seed);
        prop_assert_eq!(ds.n(), n);
        prop_assert_eq!(ds.d(), d);
        let sizes = ds.primary_labels().unwrap().class_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1, "unbalanced: {:?}", sizes);
    }

    #[test]
    fn csv_roundtrip_any_matrix(
        rows in 1usize..8,
        cols in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = sider_stats::Rng::seed_from_u64(seed);
        let m = Matrix::from_fn(rows, cols, |_, _| {
            // Mix of magnitudes incl. negatives and tiny values.
            (rng.uniform() - 0.5) * 10f64.powi((rng.below(7) as i32) - 3)
        });
        let header: Vec<String> = (0..cols).map(|j| format!("c{j}")).collect();
        let s = csv::matrix_to_string(&header, &m);
        let (h2, m2) = csv::matrix_from_string(&s).unwrap();
        prop_assert_eq!(h2, header);
        prop_assert_eq!(m2.max_abs_diff(&m), 0.0);
    }

    #[test]
    fn subsample_never_invents_rows(seed in 0u64..1000, k in 1usize..150) {
        let ds = three_d_four_clusters(7);
        let mut rng = sider_stats::Rng::seed_from_u64(seed);
        let sub = ds.subsample(k, &mut rng);
        prop_assert_eq!(sub.n(), k.min(ds.n()));
        prop_assert!(sub.validate().is_ok());
        // Every subsampled row exists in the original.
        for i in 0..sub.n() {
            let row = sub.matrix.row(i);
            let found = (0..ds.n()).any(|j| {
                ds.matrix
                    .row(j)
                    .iter()
                    .zip(row)
                    .all(|(a, b)| a == b)
            });
            prop_assert!(found, "row {} not in original", i);
        }
    }
}
