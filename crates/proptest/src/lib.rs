//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the subset of the proptest API used by the property tests
//! in this repository is reimplemented here:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`ProptestConfig::with_cases`],
//! * the [`Strategy`] trait with `prop_map`,
//! * range strategies (`0u64..1000`, `-10.0..10.0f64`, …),
//! * [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! regression file: each test case is generated from a deterministic
//! SplitMix64 stream keyed by the case index, so failures are reproducible
//! across runs and machines but are reported at full size. That trade-off
//! keeps the shim ~200 lines while preserving the contract the tests rely
//! on: many diverse deterministic inputs through the same assertions.

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs through the test body.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed the stream.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (mirrors `Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Collection strategies (subset: fixed-length `vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A vector of `count` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }
}

/// Assert within a property body (shim: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality within a property body (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` running `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::TestRng::new(
                        0xD1B5_4A32_D192_ED03u64.wrapping_mul(case.wrapping_add(1)),
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f64..5.0), &mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = crate::Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_maps(n in 1usize..10, scaled in (0.0f64..1.0).prop_map(|v| v * 10.0)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.0..10.0).contains(&scaled));
            let v = crate::collection::vec(0u32..5, n);
            let mut rng = crate::TestRng::new(n as u64);
            prop_assert_eq!(crate::Strategy::generate(&v, &mut rng).len(), n);
        }
    }
}
