//! Shared styling: the SIDER palette and coordinate mapping.

/// Colors used across the plots, mirroring the SIDER UI conventions
/// (black data, gray background sample, red selection, blue ellipses).
pub mod colors {
    /// Observed data points.
    pub const DATA: &str = "#000000";
    /// Background-distribution sample ("ghost" points).
    pub const BACKGROUND: &str = "#9e9e9e";
    /// Current selection.
    pub const SELECTION: &str = "#d62728";
    /// Confidence ellipses.
    pub const ELLIPSE: &str = "#1f77b4";
    /// Axis / frame strokes.
    pub const FRAME: &str = "#444444";
    /// Categorical palette for class-colored pairplots.
    pub const CLASSES: [&str; 8] = [
        "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#17becf",
    ];
}

/// Affine map from data space to pixel space (y-axis flipped).
#[derive(Debug, Clone, Copy)]
pub struct Mapper {
    pub x_min: f64,
    pub x_max: f64,
    pub y_min: f64,
    pub y_max: f64,
    pub left: f64,
    pub right: f64,
    pub top: f64,
    pub bottom: f64,
}

impl Mapper {
    /// Build a mapper for the data bounds into the pixel rectangle
    /// `[left, right] × [top, bottom]`. Degenerate ranges are padded.
    // `!(a > b)` is deliberate: it also catches NaN bounds, which must
    // fall into the padding branch.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(
        (mut x_min, mut x_max): (f64, f64),
        (mut y_min, mut y_max): (f64, f64),
        left: f64,
        right: f64,
        top: f64,
        bottom: f64,
    ) -> Self {
        if !(x_max > x_min) {
            x_min -= 0.5;
            x_max += 0.5;
        }
        if !(y_max > y_min) {
            y_min -= 0.5;
            y_max += 0.5;
        }
        // 4 % padding so points do not sit on the frame.
        let xp = (x_max - x_min) * 0.04;
        let yp = (y_max - y_min) * 0.04;
        Mapper {
            x_min: x_min - xp,
            x_max: x_max + xp,
            y_min: y_min - yp,
            y_max: y_max + yp,
            left,
            right,
            top,
            bottom,
        }
    }

    /// Map a data point to pixels.
    pub fn map(&self, x: f64, y: f64) -> (f64, f64) {
        let fx = (x - self.x_min) / (self.x_max - self.x_min);
        let fy = (y - self.y_min) / (self.y_max - self.y_min);
        (
            self.left + fx * (self.right - self.left),
            self.bottom - fy * (self.bottom - self.top),
        )
    }

    /// Pleasant tick positions (about `n` of them) for an axis range.
    // `!(hi > lo)` deliberately catches NaN inputs too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        if !(hi > lo) || n == 0 {
            return vec![lo];
        }
        let raw_step = (hi - lo) / n as f64;
        let mag = 10f64.powf(raw_step.log10().floor());
        let norm = raw_step / mag;
        let step = if norm < 1.5 {
            mag
        } else if norm < 3.5 {
            2.0 * mag
        } else if norm < 7.5 {
            5.0 * mag
        } else {
            10.0 * mag
        };
        let first = (lo / step).ceil() * step;
        let mut out = Vec::new();
        let mut t = first;
        while t <= hi + step * 1e-9 {
            // Snap -0.0 to 0.0 for display.
            out.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
            t += step;
        }
        out
    }
}

/// Compute joint bounds of point sets (ignoring non-finite values).
pub fn bounds(point_sets: &[&[(f64, f64)]]) -> ((f64, f64), (f64, f64)) {
    let mut x_min = f64::INFINITY;
    let mut x_max = f64::NEG_INFINITY;
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for set in point_sets {
        for &(x, y) in *set {
            if x.is_finite() {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
            }
            if y.is_finite() {
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
    }
    if !x_min.is_finite() {
        x_min = 0.0;
        x_max = 1.0;
    }
    if !y_min.is_finite() {
        y_min = 0.0;
        y_max = 1.0;
    }
    ((x_min, x_max), (y_min, y_max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_corners() {
        let m = Mapper {
            x_min: 0.0,
            x_max: 10.0,
            y_min: 0.0,
            y_max: 10.0,
            left: 100.0,
            right: 200.0,
            top: 50.0,
            bottom: 150.0,
        };
        assert_eq!(m.map(0.0, 0.0), (100.0, 150.0)); // bottom-left
        assert_eq!(m.map(10.0, 10.0), (200.0, 50.0)); // top-right
        assert_eq!(m.map(5.0, 5.0), (150.0, 100.0)); // center
    }

    #[test]
    fn new_pads_degenerate_ranges() {
        let m = Mapper::new((3.0, 3.0), (1.0, 2.0), 0.0, 100.0, 0.0, 100.0);
        assert!(m.x_max > m.x_min);
        let (px, _) = m.map(3.0, 1.5);
        assert!((px - 50.0).abs() < 1.0);
    }

    #[test]
    fn ticks_are_round_numbers() {
        let t = Mapper::ticks(0.0, 10.0, 5);
        assert!(t.contains(&0.0));
        assert!(t.contains(&10.0));
        for w in t.windows(2) {
            assert!((w[1] - w[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ticks_handle_negative_ranges() {
        let t = Mapper::ticks(-1.3, 1.3, 5);
        assert!(t.contains(&0.0));
        assert!(t.iter().all(|&v| (-1.3..=1.3).contains(&v)));
    }

    #[test]
    fn ticks_degenerate() {
        assert_eq!(Mapper::ticks(2.0, 2.0, 5), vec![2.0]);
    }

    #[test]
    fn bounds_cover_all_sets() {
        let a = [(0.0, 1.0), (5.0, -2.0)];
        let b = [(-1.0, 7.0)];
        let ((x0, x1), (y0, y1)) = bounds(&[&a, &b]);
        assert_eq!((x0, x1), (-1.0, 5.0));
        assert_eq!((y0, y1), (-2.0, 7.0));
    }

    #[test]
    fn bounds_ignore_nan_and_default_when_empty() {
        let a = [(f64::NAN, f64::NAN)];
        let ((x0, x1), _) = bounds(&[&a]);
        assert_eq!((x0, x1), (0.0, 1.0));
    }

    #[test]
    fn class_palette_has_enough_colors() {
        assert!(colors::CLASSES.len() >= 7); // segmentation has 7 classes
    }
}
