//! The SIDER scatter view.
//!
//! Reproduces the main plot of the SIDER UI (paper Fig. 7): data points in
//! black, a sample of the background distribution in gray with thin gray
//! segments connecting each data point to its background counterpart
//! (visualizing the per-point displacement of the belief model), the
//! current selection in red, and optional 95 % confidence ellipses.

use crate::style::{bounds, colors, Mapper};
use crate::svg::SvgDoc;

/// One point series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Points in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// CSS color.
    pub color: String,
    /// Point radius in pixels.
    pub radius: f64,
    /// Fill opacity.
    pub opacity: f64,
    /// Outline-only (like SIDER's gray background circles)?
    pub outline: bool,
}

impl Series {
    /// Black filled data points.
    pub fn data(points: Vec<(f64, f64)>) -> Self {
        Series {
            points,
            color: colors::DATA.into(),
            radius: 2.2,
            opacity: 0.85,
            outline: false,
        }
    }

    /// Gray outlined background-sample points.
    pub fn background(points: Vec<(f64, f64)>) -> Self {
        Series {
            points,
            color: colors::BACKGROUND.into(),
            radius: 2.2,
            opacity: 0.7,
            outline: true,
        }
    }

    /// Red selection points.
    pub fn selection(points: Vec<(f64, f64)>) -> Self {
        Series {
            points,
            color: colors::SELECTION.into(),
            radius: 2.6,
            opacity: 0.95,
            outline: false,
        }
    }
}

/// An ellipse overlay, already discretized to a polygon in data space.
#[derive(Debug, Clone)]
pub struct EllipseOverlay {
    pub polygon: Vec<(f64, f64)>,
    pub color: String,
    pub dashed: bool,
}

/// Scatter plot builder.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    segments: Vec<((f64, f64), (f64, f64))>,
    ellipses: Vec<EllipseOverlay>,
    width: f64,
    height: f64,
}

impl ScatterPlot {
    /// New plot with a title and axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ScatterPlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            segments: Vec::new(),
            ellipses: Vec::new(),
            width: 640.0,
            height: 520.0,
        }
    }

    /// Override the pixel size.
    pub fn size(mut self, width: f64, height: f64) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Add a point series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Add displacement segments (data point → background point).
    pub fn segments(mut self, segs: Vec<((f64, f64), (f64, f64))>) -> Self {
        self.segments.extend(segs);
        self
    }

    /// Add an ellipse overlay.
    pub fn ellipse(mut self, e: EllipseOverlay) -> Self {
        self.ellipses.push(e);
        self
    }

    /// Render to SVG text.
    pub fn render(&self) -> String {
        self.build().render()
    }

    /// Render and write to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.build().save(path)
    }

    fn build(&self) -> SvgDoc {
        let mut doc = SvgDoc::new(self.width, self.height);
        let left = 62.0;
        let right = self.width - 18.0;
        let top = 40.0;
        let bottom = self.height - 56.0;

        // Joint bounds over everything drawn.
        let mut sets: Vec<&[(f64, f64)]> =
            self.series.iter().map(|s| s.points.as_slice()).collect();
        let seg_pts: Vec<(f64, f64)> = self.segments.iter().flat_map(|&(a, b)| [a, b]).collect();
        sets.push(&seg_pts);
        let ell_pts: Vec<(f64, f64)> = self
            .ellipses
            .iter()
            .flat_map(|e| e.polygon.iter().copied())
            .collect();
        sets.push(&ell_pts);
        let (xb, yb) = bounds(&sets);
        let m = Mapper::new(xb, yb, left, right, top, bottom);

        // Frame + ticks.
        doc.rect(left, top, right - left, bottom - top, 1.0, colors::FRAME);
        for t in Mapper::ticks(m.x_min, m.x_max, 6) {
            let (px, _) = m.map(t, m.y_min);
            doc.line(px, bottom, px, bottom + 4.0, 1.0, colors::FRAME, 1.0);
            doc.text(px, bottom + 16.0, 10.0, "middle", &format_tick(t));
        }
        for t in Mapper::ticks(m.y_min, m.y_max, 6) {
            let (_, py) = m.map(m.x_min, t);
            doc.line(left - 4.0, py, left, py, 1.0, colors::FRAME, 1.0);
            doc.text(left - 7.0, py + 3.5, 10.0, "end", &format_tick(t));
        }

        // Titles and axis labels.
        doc.text(self.width / 2.0, 22.0, 13.0, "middle", &self.title);
        doc.text(
            (left + right) / 2.0,
            self.height - 14.0,
            11.0,
            "middle",
            &self.x_label,
        );
        doc.text_rotated(16.0, (top + bottom) / 2.0, 11.0, &self.y_label);

        // Displacement segments first (under the points).
        for &((x1, y1), (x2, y2)) in &self.segments {
            let (px1, py1) = m.map(x1, y1);
            let (px2, py2) = m.map(x2, y2);
            doc.line(px1, py1, px2, py2, 0.6, colors::BACKGROUND, 0.5);
        }
        // Series in insertion order.
        for s in &self.series {
            for &(x, y) in &s.points {
                let (px, py) = m.map(x, y);
                if s.outline {
                    doc.circle_outline(px, py, s.radius, 1.0, &s.color);
                } else {
                    doc.circle(px, py, s.radius, &s.color, s.opacity);
                }
            }
        }
        // Ellipses on top.
        for e in &self.ellipses {
            let poly: Vec<(f64, f64)> = e.polygon.iter().map(|&(x, y)| m.map(x, y)).collect();
            doc.polygon(&poly, 1.4, &e.color, e.dashed);
        }
        doc
    }
}

fn format_tick(t: f64) -> String {
    if t == 0.0 {
        "0".into()
    } else if t.abs() >= 1000.0 || t.abs() < 0.01 {
        format!("{t:.1e}")
    } else {
        let s = format!("{t:.2}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plot() -> ScatterPlot {
        ScatterPlot::new("title", "x", "y")
            .series(Series::data(vec![(0.0, 0.0), (1.0, 1.0)]))
            .series(Series::background(vec![(0.5, 0.5)]))
            .series(Series::selection(vec![(1.0, 1.0)]))
            .segments(vec![((0.0, 0.0), (0.5, 0.5))])
            .ellipse(EllipseOverlay {
                polygon: vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)],
                color: colors::ELLIPSE.into(),
                dashed: true,
            })
    }

    #[test]
    fn contains_all_layers() {
        let svg = sample_plot().render();
        // 2 data + 1 selection filled circles, 1 outlined background.
        assert_eq!(svg.matches("<circle").count(), 4);
        assert_eq!(svg.matches("fill=\"none\" stroke=\"#9e9e9e\"").count(), 1);
        assert!(svg.contains("<polygon"));
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains(">title</text>"));
        assert!(svg.contains(">x</text>"));
        assert!(svg.contains(">y</text>"));
    }

    #[test]
    fn has_frame_and_ticks() {
        let svg = sample_plot().render();
        assert!(svg.contains("<rect"));
        // Ticks produce short lines; at least a few of them.
        assert!(svg.matches("<line").count() >= 5);
    }

    #[test]
    fn custom_size_respected() {
        let svg = sample_plot().size(300.0, 200.0).render();
        assert!(svg.contains("width=\"300\""));
        assert!(svg.contains("height=\"200\""));
    }

    #[test]
    fn empty_plot_renders() {
        let svg = ScatterPlot::new("empty", "x", "y").render();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(2.5), "2.5");
        assert_eq!(format_tick(2.0), "2");
        assert!(format_tick(12345.0).contains('e'));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("sider_scatter_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("p.svg");
        sample_plot().save(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("</svg>"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
