//! Pairplots: a d×d grid of scatter panels (paper Figs. 3 and 6).

use crate::style::{colors, Mapper};
use crate::svg::SvgDoc;

/// Pairplot builder over an `n × d` point table.
#[derive(Debug, Clone)]
pub struct Pairplot {
    title: String,
    /// Column-major data: `columns[j][i]` is row i of column j.
    columns: Vec<Vec<f64>>,
    column_names: Vec<String>,
    /// Class id per row (for coloring); empty = all black.
    classes: Vec<usize>,
    panel: f64,
    max_points: usize,
}

impl Pairplot {
    /// Build from row-major data accessor.
    pub fn new(
        title: impl Into<String>,
        columns: Vec<Vec<f64>>,
        column_names: Vec<String>,
    ) -> Self {
        assert_eq!(
            columns.len(),
            column_names.len(),
            "pairplot: names mismatch"
        );
        Pairplot {
            title: title.into(),
            columns,
            column_names,
            classes: Vec::new(),
            panel: 130.0,
            max_points: 400,
        }
    }

    /// Color points by class id.
    pub fn classes(mut self, classes: Vec<usize>) -> Self {
        self.classes = classes;
        self
    }

    /// Cap the number of points drawn per panel (the paper's Fig. 3 uses a
    /// 250-point subsample "for clarity"). Points are strided, which is
    /// deterministic.
    pub fn max_points(mut self, cap: usize) -> Self {
        self.max_points = cap.max(1);
        self
    }

    /// Render to SVG text.
    pub fn render(&self) -> String {
        self.build().render()
    }

    /// Render and save.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.build().save(path)
    }

    fn build(&self) -> SvgDoc {
        let d = self.columns.len();
        let margin = 30.0;
        let gap = 6.0;
        let size = margin * 2.0 + d as f64 * self.panel + (d.saturating_sub(1)) as f64 * gap;
        let mut doc = SvgDoc::new(size, size + 20.0);
        doc.text(size / 2.0, 18.0, 13.0, "middle", &self.title);
        let n = self.columns.first().map_or(0, |c| c.len());
        let stride = (n / self.max_points).max(1);

        for pi in 0..d {
            for pj in 0..d {
                let x0 = margin + pj as f64 * (self.panel + gap);
                let y0 = 20.0 + margin + pi as f64 * (self.panel + gap);
                doc.rect(x0, y0, self.panel, self.panel, 0.8, colors::FRAME);
                if pi == pj {
                    doc.text(
                        x0 + self.panel / 2.0,
                        y0 + self.panel / 2.0 + 4.0,
                        12.0,
                        "middle",
                        &self.column_names[pi],
                    );
                    continue;
                }
                let xs = &self.columns[pj];
                let ys = &self.columns[pi];
                let pts: Vec<(f64, f64)> = (0..n).step_by(stride).map(|i| (xs[i], ys[i])).collect();
                let (xb, yb) = crate::style::bounds(&[&pts]);
                let m = Mapper::new(
                    xb,
                    yb,
                    x0 + 2.0,
                    x0 + self.panel - 2.0,
                    y0 + 2.0,
                    y0 + self.panel - 2.0,
                );
                for (k, i) in (0..n).step_by(stride).enumerate() {
                    let (px, py) = m.map(pts[k].0, pts[k].1);
                    let color = if self.classes.is_empty() {
                        colors::DATA
                    } else {
                        colors::CLASSES[self.classes[i] % colors::CLASSES.len()]
                    };
                    doc.circle(px, py, 1.4, color, 0.8);
                }
            }
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pairplot {
        Pairplot::new(
            "pp",
            vec![vec![0.0, 1.0, 2.0], vec![2.0, 1.0, 0.0]],
            vec!["A".into(), "B".into()],
        )
    }

    #[test]
    fn grid_has_d_squared_panels() {
        let svg = sample().render();
        // 4 panel rects (no extra background rect besides the svg's own).
        assert_eq!(svg.matches("<rect").count() - 1, 4);
        // Diagonal labels present.
        assert!(svg.contains(">A</text>"));
        assert!(svg.contains(">B</text>"));
    }

    #[test]
    fn off_diagonal_points_drawn() {
        let svg = sample().render();
        // 2 off-diagonal panels × 3 points.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn class_colors_used() {
        let svg = sample().classes(vec![0, 1, 0]).render();
        assert!(svg.contains(colors::CLASSES[0]));
        assert!(svg.contains(colors::CLASSES[1]));
    }

    #[test]
    fn point_cap_strides() {
        let n = 1000;
        let cols = vec![(0..n).map(|i| i as f64).collect(), vec![0.0; n]];
        let svg = Pairplot::new("pp", cols, vec!["x".into(), "y".into()])
            .max_points(100)
            .render();
        let drawn = svg.matches("<circle").count();
        assert!(drawn <= 2 * 100, "{drawn}");
        assert!(drawn >= 2 * 90);
    }

    #[test]
    #[should_panic(expected = "names mismatch")]
    fn mismatched_names_panic() {
        let _ = Pairplot::new("pp", vec![vec![0.0]], vec![]);
    }
}
