//! Line charts with optional logarithmic axes.
//!
//! Used for the convergence curves of paper Fig. 5b, which are log–log:
//! `(Σ₁)₁₁` versus optimization sweep.

use crate::style::{colors, Mapper};
use crate::svg::SvgDoc;

/// A named line series.
#[derive(Debug, Clone)]
pub struct LineSeries {
    pub name: String,
    pub points: Vec<(f64, f64)>,
    pub color: String,
}

/// Line chart builder.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<LineSeries>,
    log_x: bool,
    log_y: bool,
    width: f64,
    height: f64,
}

impl LineChart {
    /// New chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_x: false,
            log_y: false,
            width: 640.0,
            height: 460.0,
        }
    }

    /// Use log10 scale on x (non-positive values are dropped).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Use log10 scale on y (non-positive values are dropped).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Add a series with an automatic palette color.
    pub fn series(mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        let color = colors::CLASSES[self.series.len() % colors::CLASSES.len()].to_string();
        self.series.push(LineSeries {
            name: name.into(),
            points,
            color,
        });
        self
    }

    /// Render to SVG text.
    pub fn render(&self) -> String {
        self.build().render()
    }

    /// Render and save.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.build().save(path)
    }

    fn transform(&self, (x, y): (f64, f64)) -> Option<(f64, f64)> {
        let tx = if self.log_x {
            if x <= 0.0 {
                return None;
            }
            x.log10()
        } else {
            x
        };
        let ty = if self.log_y {
            if y <= 0.0 {
                return None;
            }
            y.log10()
        } else {
            y
        };
        (tx.is_finite() && ty.is_finite()).then_some((tx, ty))
    }

    fn build(&self) -> SvgDoc {
        let mut doc = SvgDoc::new(self.width, self.height);
        let left = 70.0;
        let right = self.width - 20.0;
        let top = 40.0;
        let bottom = self.height - 56.0;

        let transformed: Vec<Vec<(f64, f64)>> = self
            .series
            .iter()
            .map(|s| s.points.iter().filter_map(|&p| self.transform(p)).collect())
            .collect();
        let sets: Vec<&[(f64, f64)]> = transformed.iter().map(|v| v.as_slice()).collect();
        let (xb, yb) = crate::style::bounds(&sets);
        let m = Mapper::new(xb, yb, left, right, top, bottom);

        doc.rect(left, top, right - left, bottom - top, 1.0, colors::FRAME);
        for t in Mapper::ticks(m.x_min, m.x_max, 6) {
            let (px, _) = m.map(t, m.y_min);
            doc.line(px, bottom, px, bottom + 4.0, 1.0, colors::FRAME, 1.0);
            doc.text(
                px,
                bottom + 16.0,
                10.0,
                "middle",
                &self.tick_label(t, self.log_x),
            );
        }
        for t in Mapper::ticks(m.y_min, m.y_max, 6) {
            let (_, py) = m.map(m.x_min, t);
            doc.line(left - 4.0, py, left, py, 1.0, colors::FRAME, 1.0);
            doc.text(
                left - 7.0,
                py + 3.5,
                10.0,
                "end",
                &self.tick_label(t, self.log_y),
            );
        }
        doc.text(self.width / 2.0, 22.0, 13.0, "middle", &self.title);
        doc.text(
            (left + right) / 2.0,
            self.height - 14.0,
            11.0,
            "middle",
            &self.x_label,
        );
        doc.text_rotated(18.0, (top + bottom) / 2.0, 11.0, &self.y_label);

        for (s, pts) in self.series.iter().zip(&transformed) {
            let mapped: Vec<(f64, f64)> = pts.iter().map(|&(x, y)| m.map(x, y)).collect();
            doc.polyline(&mapped, 1.6, &s.color, false);
        }
        // Legend (top-right corner inside the frame).
        for (k, s) in self.series.iter().enumerate() {
            let y = top + 16.0 + 15.0 * k as f64;
            doc.line(
                right - 120.0,
                y - 4.0,
                right - 100.0,
                y - 4.0,
                2.0,
                &s.color,
                1.0,
            );
            doc.text(right - 95.0, y, 10.0, "start", &s.name);
        }
        doc
    }

    fn tick_label(&self, t: f64, log: bool) -> String {
        if log {
            // t is an exponent in log space.
            format!("1e{t:.0}")
        } else if t == 0.0 {
            "0".into()
        } else if t.abs() >= 1000.0 || t.abs() < 0.01 {
            format!("{t:.1e}")
        } else {
            let s = format!("{t:.2}");
            s.trim_end_matches('0').trim_end_matches('.').to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chart_renders_series_and_legend() {
        let svg = LineChart::new("t", "x", "y")
            .series("a", vec![(0.0, 0.0), (1.0, 2.0)])
            .series("b", vec![(0.0, 2.0), (1.0, 0.0)])
            .render();
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn log_log_drops_nonpositive_points() {
        let svg = LineChart::new("t", "x", "y")
            .log_x()
            .log_y()
            .series(
                "a",
                vec![(0.0, 1.0), (1.0, 1.0), (10.0, 0.1), (100.0, 0.01)],
            )
            .render();
        // First point dropped (x=0): polyline must have 3 coordinate pairs.
        let poly = svg
            .lines()
            .find(|l| l.contains("<polyline"))
            .unwrap()
            .to_string();
        assert_eq!(poly.matches(',').count(), 3);
        // Log tick labels look like 1e±k.
        assert!(svg.contains("1e"));
    }

    #[test]
    fn empty_chart_is_valid() {
        let svg = LineChart::new("t", "x", "y").render();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn log_slope_is_straight_line() {
        // y = 1/x on log-log is a straight line: pixel midpoints collinear.
        let chart = LineChart::new("t", "x", "y")
            .log_x()
            .log_y()
            .series("h", vec![(1.0, 1.0), (10.0, 0.1), (100.0, 0.01)]);
        let svg = chart.render();
        let poly_line = svg.lines().find(|l| l.contains("<polyline")).unwrap();
        let coords: Vec<(f64, f64)> = poly_line
            .split('"')
            .nth(1)
            .unwrap()
            .split(' ')
            .map(|p| {
                let mut it = p.split(',');
                (
                    it.next().unwrap().parse().unwrap(),
                    it.next().unwrap().parse().unwrap(),
                )
            })
            .collect();
        assert_eq!(coords.len(), 3);
        let slope1 = (coords[1].1 - coords[0].1) / (coords[1].0 - coords[0].0);
        let slope2 = (coords[2].1 - coords[1].1) / (coords[2].0 - coords[1].0);
        assert!((slope1 - slope2).abs() < 0.02, "{slope1} vs {slope2}");
    }
}
