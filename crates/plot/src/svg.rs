//! Low-level SVG document builder.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Escape text content for XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

impl SvgDoc {
    /// New document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Add a filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, opacity: f64) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}" fill-opacity="{opacity:.2}"/>"#
        );
    }

    /// Add a stroked, unfilled circle.
    pub fn circle_outline(&mut self, cx: f64, cy: f64, r: f64, stroke: f64, color: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="none" stroke="{color}" stroke-width="{stroke:.2}"/>"#
        );
    }

    /// Add a line segment.
    #[allow(clippy::too_many_arguments)] // geometric primitives are clearest flat
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: f64,
        color: &str,
        opacity: f64,
    ) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{color}" stroke-width="{stroke:.2}" stroke-opacity="{opacity:.2}"/>"#
        );
    }

    /// Add a rectangle outline.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, stroke: f64, color: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="none" stroke="{color}" stroke-width="{stroke:.2}"/>"#
        );
    }

    /// Add a polyline (open path).
    pub fn polyline(&mut self, pts: &[(f64, f64)], stroke: f64, color: &str, dashed: bool) {
        if pts.is_empty() {
            return;
        }
        let coords: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.2},{y:.2}")).collect();
        let dash = if dashed {
            r#" stroke-dasharray="5,4""#
        } else {
            ""
        };
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="{stroke:.2}"{dash}/>"#,
            coords.join(" ")
        );
    }

    /// Add a closed polygon outline.
    pub fn polygon(&mut self, pts: &[(f64, f64)], stroke: f64, color: &str, dashed: bool) {
        if pts.is_empty() {
            return;
        }
        let coords: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.2},{y:.2}")).collect();
        let dash = if dashed {
            r#" stroke-dasharray="5,4""#
        } else {
            ""
        };
        let _ = writeln!(
            self.body,
            r#"<polygon points="{}" fill="none" stroke="{color}" stroke-width="{stroke:.2}"{dash}/>"#,
            coords.join(" ")
        );
    }

    /// Add text (anchor: "start" | "middle" | "end").
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"#,
            escape(content)
        );
    }

    /// Add rotated text (for y-axis labels).
    pub fn text_rotated(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 {x:.2} {y:.2})">{}</text>"#,
            escape(content)
        );
    }

    /// Finish the document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }

    /// Write to a file, creating parent directories.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_skeleton() {
        let doc = SvgDoc::new(100.0, 50.0);
        let out = doc.render();
        assert!(out.starts_with("<svg"));
        assert!(out.trim_end().ends_with("</svg>"));
        assert!(out.contains("width=\"100\""));
        assert!(out.contains("height=\"50\""));
    }

    #[test]
    fn elements_appear_in_output() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.circle(1.0, 2.0, 3.0, "black", 1.0);
        doc.line(0.0, 0.0, 5.0, 5.0, 1.0, "gray", 0.5);
        doc.rect(0.0, 0.0, 10.0, 10.0, 1.0, "red");
        doc.text(5.0, 5.0, 10.0, "middle", "hello");
        let out = doc.render();
        assert!(out.contains("<circle"));
        assert!(out.contains("<line"));
        assert!(out.contains("<rect"));
        assert!(out.contains(">hello</text>"));
    }

    #[test]
    fn escapes_xml_in_text() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.text(0.0, 0.0, 8.0, "start", "a<b & \"c\"");
        let out = doc.render();
        assert!(out.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!out.contains("a<b"));
    }

    #[test]
    fn polyline_and_polygon() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.polyline(&[(0.0, 0.0), (1.0, 1.0)], 1.0, "blue", false);
        doc.polygon(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)], 1.0, "blue", true);
        let out = doc.render();
        assert!(out.contains("<polyline"));
        assert!(out.contains("<polygon"));
        assert!(out.contains("stroke-dasharray"));
    }

    #[test]
    fn empty_polyline_ignored() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.polyline(&[], 1.0, "blue", false);
        assert!(!doc.render().contains("<polyline"));
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join("sider_plot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.svg");
        SvgDoc::new(10.0, 10.0).save(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
