//! Headless SVG plotting for the SIDER reproduction.
//!
//! The original SIDER is a Shiny web UI; this crate replaces it with SVG
//! files so every view of the interactive loop can be rendered from
//! examples, tests and experiment binaries without a browser:
//!
//! * [`scatter`] — the main SIDER view: data points (black), background
//!   sample ghosts (gray) with displacement segments connecting each data
//!   point to its background counterpart, selection highlighting (red) and
//!   confidence-ellipse overlays (paper Fig. 7).
//! * [`mod@line`] — line/step charts with optional log axes (the convergence
//!   curves of paper Fig. 5b are log–log).
//! * [`pairplot`] — a d×d grid of panels colored by class (paper
//!   Figs. 3 and 6).
//!
//! Zero dependencies; the SVG subset used renders in any browser.

// Indexed `for` loops are the dominant idiom in this crate's numeric
// kernels, where several arrays are indexed in lockstep and the index is
// part of the math; iterator rewrites obscure it.
#![allow(clippy::needless_range_loop)]

pub mod line;
pub mod pairplot;
pub mod scatter;
pub mod style;
pub mod svg;

pub use line::LineChart;
pub use pairplot::Pairplot;
pub use scatter::ScatterPlot;
pub use svg::SvgDoc;
