//! Striped-serving load benchmark: the open-loop generator from
//! `sider_loadgen` replays the identical fixed-seed mixed workload
//! against an in-process server (event-driven accept loop) at
//! `stripes = 1` and `stripes = 4`, plus a `churn` scenario at
//! `stripes = 4` where every scheduled request is accompanied by a
//! short-lived aborted or empty connection. The per-endpoint latency
//! digests of all runs are persisted to `BENCH_serve.json`.
//!
//! Why both stripe counts in one artifact: the striping tentpole claims
//! that sharding the `SessionManager` removes the cross-session lock and
//! pool contention without changing a single response byte. The byte
//! half is pinned by the e2e transcript tests; this bench records the
//! latency half under a workload that actually queues — open-loop
//! arrivals at a fixed offered rate, where server backlog counts against
//! the latency of every request it delays (no coordinated omission).
//!
//! The two runs replay the *same schedule* (same seed, same session
//! count, same arrival offsets), so any difference between the
//! `stripes:1` and `stripes:4` rows is the server's, not the
//! generator's. Each stripe gets one pool thread, so the 4-stripe server
//! has 4× the execution width — on a multi-core host that is the
//! headline; on a 1-CPU CI container both rows still validate the
//! harness end to end (schema, error-free serving, monotone
//! percentiles), which is what `check_bench_artifacts` gates on.
//!
//! Since the replication tentpole the artifact also carries a
//! `replication` scenario: the same striped workload against a durable
//! **leader** that is actively shipping every stripe's WAL records to a
//! live follower. The leader's latency digests go through the same SLO
//! gates as every other run — shipping must not cost the serving edge
//! its latency — and the run records the follower's catch-up stats
//! (shipped vs applied seqs per stripe, catch-up wall time), which
//! `check_bench_artifacts` gates on: a follower that never reaches zero
//! lag fails CI.
//!
//! Since the guided-exploration tentpole the artifact also carries a
//! `suggest` scenario: the striped workload with a quarter of the mixed
//! phase redirected to `POST /api/sessions/{id}/suggest` — each call
//! generates and scores a 64-candidate batch of projection planes
//! against the session's background, so the row measures the serving
//! edge under real recommendation load. The same row embeds a
//! `scoring` block timing the engine in-process (identical batch at
//! pool 1 vs pool 4) after asserting the two responses are
//! byte-identical; `check_bench_artifacts` gates on both.
//!
//! Set `SIDER_BENCH_SMOKE=1` for the reduced CI workload (same JSON
//! schema).

use sider_core::wire::SuggestRequest;
use sider_core::EdaSession;
use sider_json::Json;
use sider_loadgen::{http_exchange, run, smoke_mode, LoadConfig};
use sider_par::ThreadPool;
use sider_server::{AcceptMode, Server, ServerConfig};
use sider_store::StoreConfig;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stripe counts compared in the artifact (1 = the unstriped baseline).
const STRIPE_COUNTS: [usize; 2] = [1, 4];

/// Share of the mixed phase redirected to suggest calls in the
/// `suggest` scenario — large enough that the row's digests reflect
/// recommendation latency, small enough to keep the session-mutating
/// traffic exercising the striped write path.
const SUGGEST_SHARE: f64 = 0.25;

fn main() {
    let smoke = smoke_mode();
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut runs = Vec::new();
    let mut workload: Option<LoadConfig> = None;
    // The mixed-workload rows at each stripe count, plus a churn row: the
    // same striped workload with short-lived aborted/empty connections
    // injected alongside every request, which the event-driven accept
    // loop must absorb without a single failed real request.
    let scenarios: Vec<(usize, &str)> = STRIPE_COUNTS
        .iter()
        .map(|&s| (s, "mixed"))
        .chain([
            (4usize, "churn"),
            (4usize, "replication"),
            (4usize, "suggest"),
        ])
        .collect();
    for (stripes, scenario) in scenarios {
        let (report, config, follower) = run_against(stripes, smoke, scenario);
        if report.total_errors > 0 {
            eprintln!(
                "serve: stripes={stripes} {scenario}: {} of {} requests failed",
                report.total_errors, report.total_requests
            );
            std::process::exit(1);
        }
        println!(
            "serve: stripes={stripes} {scenario}: {} requests ({} churn conns) in {:.2}s mixed phase, {:.0} req/s, p99 view {:.2}ms",
            report.total_requests,
            report.churn_conns,
            report.mixed_wall_s,
            report.throughput_rps,
            report
                .endpoints
                .iter()
                .find(|(e, _)| e.as_str() == "view")
                .map(|(_, s)| s.p99_ns as f64 / 1e6)
                .unwrap_or(0.0),
        );
        let mut fields = vec![
            ("stripes", Json::from(stripes)),
            ("threads_per_stripe", Json::from(1usize)),
            ("scenario", Json::from(scenario)),
            ("accept", Json::from(AcceptMode::Events.as_str())),
            ("report", report.to_json()),
        ];
        if let Some(follower) = follower {
            fields.push(("follower", follower));
        }
        if scenario == "suggest" {
            fields.push((
                "suggest",
                Json::obj([
                    ("share", Json::from(SUGGEST_SHARE)),
                    ("batch", Json::from(64usize)),
                    ("k", Json::from(8usize)),
                ]),
            ));
            fields.push(("scoring", score_in_process(smoke)));
        }
        runs.push(Json::obj(fields));
        workload = Some(config);
    }
    let workload = workload.expect("at least one run");

    let doc = Json::obj([
        ("bench", Json::from("serve")),
        ("smoke", Json::from(smoke)),
        ("available_parallelism", Json::from(available)),
        (
            "workload",
            Json::obj([
                ("sessions", Json::from(workload.sessions)),
                ("requests", Json::from(workload.requests)),
                ("rps", Json::from(workload.rps)),
                ("workers", Json::from(workload.workers)),
                ("seed", Json::from(workload.seed)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    // A swallowed write failure would let the CI schema check pass green
    // on a stale committed artifact — fail the bench run instead.
    if let Err(e) = std::fs::write(path, format!("{}\n", doc.dump_pretty())) {
        eprintln!("serve: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("serve: wrote {path}");
}

/// Boot an in-process server with `stripes` stripes (one pool thread
/// each) under the event-driven accept loop, replay the workload
/// (with connection churn or active replication when the scenario asks
/// for it), and return the report, the workload config used (identical
/// across calls — the schedule is seed-fixed), and the follower's
/// catch-up stats for the replication scenario.
fn run_against(
    stripes: usize,
    smoke: bool,
    scenario: &str,
) -> (sider_loadgen::LoadReport, LoadConfig, Option<Json>) {
    let replication = scenario == "replication";
    let bench_dir = std::env::temp_dir().join(format!(
        "sider_bench_serve_replication_{}",
        std::process::id()
    ));
    let store = replication.then(|| {
        let dir = bench_dir.join("leader");
        let _ = std::fs::remove_dir_all(&bench_dir);
        StoreConfig::new(dir)
    });
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_sessions: if smoke { 64 } else { 512 },
        idle_timeout: Duration::from_secs(600),
        threads: Some(1),
        stripes,
        store,
        accept: AcceptMode::Events,
        ship_addr: replication.then(|| "127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("bind serve-bench server");
    let addr = server.local_addr();
    let ship_addr = server.ship_addr();
    let handle = server.shutdown_handle();
    let joiner = std::thread::spawn(move || server.run());

    // The replication scenario attaches a live follower before the
    // workload starts: the leader's latencies are measured while every
    // acknowledged op is also being framed, shipped, and acked.
    let follower = replication.then(|| {
        let follower = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: if smoke { 64 } else { 512 },
            idle_timeout: Duration::from_secs(600),
            threads: Some(1),
            stripes,
            store: Some(StoreConfig::new(bench_dir.join("follower"))),
            accept: AcceptMode::Events,
            follow: Some(ship_addr.expect("leader ship addr").to_string()),
            ..ServerConfig::default()
        })
        .expect("bind serve-bench follower");
        let addr = follower.local_addr();
        let handle = follower.shutdown_handle();
        let joiner = std::thread::spawn(move || follower.run());
        (addr, handle, joiner)
    });

    let mut config = LoadConfig::from_env(addr.to_string());
    config.churn = scenario == "churn";
    config.suggest = if scenario == "suggest" {
        SUGGEST_SHARE
    } else {
        0.0
    };
    let report = match run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve: stripes={stripes}: load run failed: {e}");
            std::process::exit(1);
        }
    };

    let follower_stats = follower.map(|(follower_addr, fhandle, fjoiner)| {
        let stats = wait_for_catchup(addr, follower_addr);
        fhandle.shutdown();
        fjoiner
            .join()
            .expect("follower thread")
            .expect("follower run");
        stats
    });
    handle.shutdown();
    joiner.join().expect("server thread").expect("server run");
    if replication {
        let _ = std::fs::remove_dir_all(&bench_dir);
    }
    (report, config, follower_stats)
}

/// Time the recommendation engine in-process on the bench dataset:
/// score the same 64-candidate batch with a 1-thread and a 4-thread
/// pool, assert the two responses are byte-identical (the determinism
/// contract the e2e tests pin over HTTP), and record the best-of-reps
/// wall time of each. `speedup` is `pool1_ns / pool4_ns` — informative
/// on a multi-core host, near 1 on a 1-CPU container, and gated only
/// as `> 0` by `check_bench_artifacts` for that reason.
fn score_in_process(smoke: bool) -> Json {
    let request = SuggestRequest {
        seed: 2018,
        batch: 64,
        k: 8,
    };
    let reps: usize = if smoke { 3 } else { 10 };
    let mut times = [0u128; 2];
    let mut dumps: Vec<String> = Vec::new();
    for (slot, threads) in [(0usize, 1usize), (1usize, 4usize)] {
        let session = EdaSession::with_pool(
            sider_data::synthetic::three_d_four_clusters(2018),
            7,
            Arc::new(ThreadPool::new(threads)),
        )
        .expect("bench session");
        // Warm once (first call pays one-off allocation), then best-of.
        let warm = sider_suggest::recommend(&session, &request).expect("recommend");
        dumps.push(sider_core::wire::suggest_response_to_json(&warm).dump());
        let mut best = u128::MAX;
        for _ in 0..reps {
            let started = Instant::now();
            let response = sider_suggest::recommend(&session, &request).expect("recommend");
            best = best.min(started.elapsed().as_nanos());
            assert_eq!(response.suggestions.len(), 8);
        }
        times[slot] = best.max(1);
    }
    if dumps[0] != dumps[1] {
        eprintln!("serve: suggest scoring diverged between pool 1 and pool 4");
        std::process::exit(1);
    }
    Json::obj([
        ("batch", Json::from(64usize)),
        ("k", Json::from(8usize)),
        ("reps", Json::from(reps)),
        ("pool1_ns", Json::from(times[0] as u64)),
        ("pool4_ns", Json::from(times[1] as u64)),
        ("speedup", Json::from(times[0] as f64 / times[1] as f64)),
    ])
}

/// Per-stripe seq array from a `/health` replication block.
fn health_seqs(addr: SocketAddr, key: &str) -> Vec<u64> {
    let (status, raw) = http_exchange(addr, "GET", "/health", "").expect("health");
    assert_eq!(status, 200, "health status");
    let pos = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let body = std::str::from_utf8(&raw[pos + 4..]).expect("utf-8 health");
    let doc = Json::parse(body).expect("health json");
    doc.path(&format!("replication.{key}"))
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("no replication.{key} in {body}"))
        .iter()
        .map(|v| v.as_num().expect("seq") as u64)
        .collect()
}

/// Poll the follower until its applied seqs reach the leader's shipped
/// seqs; returns the catch-up stats recorded in the artifact. The
/// leader's own `/health` is the ground truth for how much must arrive.
fn wait_for_catchup(leader: SocketAddr, follower: SocketAddr) -> Json {
    let shipped = health_seqs(leader, "shipped");
    let started = Instant::now();
    let deadline = started + Duration::from_secs(300);
    loop {
        let applied = health_seqs(follower, "applied");
        let caught_up =
            applied.len() == shipped.len() && applied.iter().zip(&shipped).all(|(a, s)| a >= s);
        if caught_up || Instant::now() >= deadline {
            let lag: u64 = shipped
                .iter()
                .zip(&applied)
                .map(|(s, a)| s.saturating_sub(*a))
                .sum();
            if !caught_up {
                eprintln!(
                    "serve: replication follower never caught up: shipped {shipped:?}, applied {applied:?}"
                );
                std::process::exit(1);
            }
            return Json::obj([
                ("caught_up", Json::from(true)),
                ("final_lag", Json::from(lag)),
                (
                    "catchup_wall_s",
                    Json::from(started.elapsed().as_secs_f64()),
                ),
                (
                    "shipped",
                    Json::Arr(shipped.iter().map(|&v| Json::from(v)).collect()),
                ),
                (
                    "applied",
                    Json::Arr(applied.iter().map(|&v| Json::from(v)).collect()),
                ),
            ]);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
