//! Striped-serving load benchmark: the open-loop generator from
//! `sider_loadgen` replays the identical fixed-seed mixed workload
//! against an in-process server (event-driven accept loop) at
//! `stripes = 1` and `stripes = 4`, plus a `churn` scenario at
//! `stripes = 4` where every scheduled request is accompanied by a
//! short-lived aborted or empty connection. The per-endpoint latency
//! digests of all runs are persisted to `BENCH_serve.json`.
//!
//! Why both stripe counts in one artifact: the striping tentpole claims
//! that sharding the `SessionManager` removes the cross-session lock and
//! pool contention without changing a single response byte. The byte
//! half is pinned by the e2e transcript tests; this bench records the
//! latency half under a workload that actually queues — open-loop
//! arrivals at a fixed offered rate, where server backlog counts against
//! the latency of every request it delays (no coordinated omission).
//!
//! The two runs replay the *same schedule* (same seed, same session
//! count, same arrival offsets), so any difference between the
//! `stripes:1` and `stripes:4` rows is the server's, not the
//! generator's. Each stripe gets one pool thread, so the 4-stripe server
//! has 4× the execution width — on a multi-core host that is the
//! headline; on a 1-CPU CI container both rows still validate the
//! harness end to end (schema, error-free serving, monotone
//! percentiles), which is what `check_bench_artifacts` gates on.
//!
//! Set `SIDER_BENCH_SMOKE=1` for the reduced CI workload (same JSON
//! schema).

use sider_json::Json;
use sider_loadgen::{run, smoke_mode, LoadConfig};
use sider_server::{AcceptMode, Server, ServerConfig};
use std::time::Duration;

/// Stripe counts compared in the artifact (1 = the unstriped baseline).
const STRIPE_COUNTS: [usize; 2] = [1, 4];

fn main() {
    let smoke = smoke_mode();
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut runs = Vec::new();
    let mut workload: Option<LoadConfig> = None;
    // The mixed-workload rows at each stripe count, plus a churn row: the
    // same striped workload with short-lived aborted/empty connections
    // injected alongside every request, which the event-driven accept
    // loop must absorb without a single failed real request.
    let scenarios: Vec<(usize, bool)> = STRIPE_COUNTS
        .iter()
        .map(|&s| (s, false))
        .chain([(4usize, true)])
        .collect();
    for (stripes, churn) in scenarios {
        let scenario = if churn { "churn" } else { "mixed" };
        let (report, config) = run_against(stripes, smoke, churn);
        if report.total_errors > 0 {
            eprintln!(
                "serve: stripes={stripes} {scenario}: {} of {} requests failed",
                report.total_errors, report.total_requests
            );
            std::process::exit(1);
        }
        println!(
            "serve: stripes={stripes} {scenario}: {} requests ({} churn conns) in {:.2}s mixed phase, {:.0} req/s, p99 view {:.2}ms",
            report.total_requests,
            report.churn_conns,
            report.mixed_wall_s,
            report.throughput_rps,
            report
                .endpoints
                .iter()
                .find(|(e, _)| e.as_str() == "view")
                .map(|(_, s)| s.p99_ns as f64 / 1e6)
                .unwrap_or(0.0),
        );
        runs.push(Json::obj([
            ("stripes", Json::from(stripes)),
            ("threads_per_stripe", Json::from(1usize)),
            ("scenario", Json::from(scenario)),
            ("accept", Json::from(AcceptMode::Events.as_str())),
            ("report", report.to_json()),
        ]));
        workload = Some(config);
    }
    let workload = workload.expect("at least one run");

    let doc = Json::obj([
        ("bench", Json::from("serve")),
        ("smoke", Json::from(smoke)),
        ("available_parallelism", Json::from(available)),
        (
            "workload",
            Json::obj([
                ("sessions", Json::from(workload.sessions)),
                ("requests", Json::from(workload.requests)),
                ("rps", Json::from(workload.rps)),
                ("workers", Json::from(workload.workers)),
                ("seed", Json::from(workload.seed)),
            ]),
        ),
        ("runs", Json::Arr(runs)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    // A swallowed write failure would let the CI schema check pass green
    // on a stale committed artifact — fail the bench run instead.
    if let Err(e) = std::fs::write(path, format!("{}\n", doc.dump_pretty())) {
        eprintln!("serve: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("serve: wrote {path}");
}

/// Boot an in-process server with `stripes` stripes (one pool thread
/// each) under the event-driven accept loop, replay the workload
/// (optionally with connection churn), and return the report plus the
/// workload config used (identical across calls — the schedule is
/// seed-fixed).
fn run_against(
    stripes: usize,
    smoke: bool,
    churn: bool,
) -> (sider_loadgen::LoadReport, LoadConfig) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_sessions: if smoke { 64 } else { 512 },
        idle_timeout: Duration::from_secs(600),
        threads: Some(1),
        stripes,
        store: None,
        accept: AcceptMode::Events,
    })
    .expect("bind serve-bench server");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let joiner = std::thread::spawn(move || server.run());

    let mut config = LoadConfig::from_env(addr.to_string());
    config.churn = churn;
    let report = match run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve: stripes={stripes}: load run failed: {e}");
            std::process::exit(1);
        }
    };
    handle.shutdown();
    joiner.join().expect("server thread").expect("server run");
    (report, config)
}
