//! Scaling scenario matrix for the parallel execution and incremental
//! spectral-maintenance subsystems.
//!
//! For every scenario `n × d` in the grid, the round-trip hot paths —
//! background **sampling**, spectral **refresh** of all classes,
//! **whitening**, **PCA** moment accumulation and a dataset-sized
//! **matmul** — are timed at 1, 2 and `max` threads, plus a *PR-1
//! baseline*: the allocation-per-row sampling loop and the
//! non-early-exit Jacobi refresh exactly as they were before these
//! subsystems landed, compiled in today's workspace on the same hardware.
//!
//! The refresh stage models one warm feedback round: every class's
//! precision has moved by `k = clamp(d/8, 1, 4)` rank-1 directions
//! since its spectrum was cached (a 2-D marking interaction perturbs 2–4
//! directions per class — see `Solver::spectral_log`). It is timed in
//! both modes:
//!
//! * **incremental** — the shipped warm path: cached eigendecompositions
//!   brought current by `k` rank-1 secular updates (`O(d²·k)` per class);
//!   this is the `refresh_ns` that enters `hot_total_ns`;
//! * **full** — the pre-incremental path (empty rank-1 log): a fresh
//!   `O(d³)` Jacobi solve per class, recorded as `refresh_full_ns` and
//!   summarized per scenario under `refresh_mode` with
//!   `incremental_speedup = full / incremental`.
//!
//! Three claims are persisted to `BENCH_scaling.json`:
//!
//! * **serial win** — `serial_speedup_vs_pr1` compares the 1-thread run of
//!   the new kernels (incremental refresh) against the PR-1 baseline
//!   (allocation removal, loop order, rank-1 spectral maintenance);
//! * **incremental win** — `refresh_mode.incremental_speedup`, the
//!   algorithmic rank-1-vs-Jacobi ratio on identical inputs and identical
//!   resulting distributions (within spectral tolerance);
//! * **parallel win** — `parallel_speedup_max_vs_1` compares max-thread vs
//!   1-thread runs of the same kernels (only meaningful when the host
//!   grants more than one CPU; `available_parallelism` is recorded so the
//!   trajectory can be read in context).
//!
//! Every scenario also times the **cold eigensolver** on one class
//! precision: the raw cyclic Jacobi (`eigen.jacobi_ns`) against the
//! `SymEigen::decompose` dispatch (`eigen.dc_ns` — tridiagonalization +
//! divide-and-conquer above the size threshold, Jacobi below), with
//! `eigen.dc_speedup = jacobi / dc` after a spectrum-agreement gate. At
//! `d < 32` the dispatch *is* Jacobi, so the ratio hovers around 1; at
//! `d ≥ 32` it is the cold-refit win the CI schema check gates on.
//!
//! Every run also cross-checks that sampling (from the incrementally
//! refreshed distribution), whitening, the fused whiten+moment kernel
//! and PCA produce **bit-identical** outputs at every thread count
//! (`bit_identical_across_threads`), which is the determinism contract
//! of `sider_par`.
//!
//! Each scenario also times **crash recovery** (`store.recover_ns`): a
//! real `sider_store` op-log over an `n × d` session — create, two
//! cluster-knowledge rounds with warm updates, a view — is written
//! through the production append path, then the session is rebuilt from
//! disk with `Store::recover_session_with` (WAL scan + CRC validation +
//! replay through the single `ops::apply` path on a 1-thread pool). The
//! resulting state is fingerprint-checked against a live twin before the
//! timing is trusted.
//!
//! Set `SIDER_BENCH_SMOKE=1` for the reduced CI grid (same JSON schema).

use sider_bench::{median_duration, smoke_mode, time};
use sider_json::Json;
use sider_linalg::{sym_eigen, vector, woodbury, Matrix, SymEigen};
use sider_maxent::params::ClassParams;
use sider_maxent::{BackgroundDistribution, RefreshStats};
use sider_par::ThreadPool;
use sider_projection::pca_directions_with;
use sider_stats::Rng;
use sider_store::ops::OpKind;
use sider_store::{FsyncPolicy, Store, StoreConfig};
use std::sync::Arc;
use std::time::Duration;

/// Distinct per-row Gaussians in every scenario (8 eigendecompositions per
/// refresh — enough to give a multi-core pool real per-class parallelism).
const N_CLASSES: usize = 8;

struct Scenario {
    n: usize,
    d: usize,
}

/// Pending rank of the modeled feedback round. A 2-D marking interaction
/// perturbs 2–4 quadratic directions per affected class (the two marked
/// axes plus the margins aligned with them — see `Solver::spectral_log`),
/// so the modeled rank grows gently with `d` and stays well inside the
/// incremental-refresh budget `max(1, d/4)`.
fn pending_rank(d: usize) -> usize {
    (d / 8).clamp(1, 4)
}

struct StageTimes {
    threads: usize,
    sample: Duration,
    refresh: Duration,
    refresh_full: Duration,
    whiten: Duration,
    pca: Duration,
    matmul: Duration,
}

impl StageTimes {
    /// The acceptance metric: sampling + (incremental) refresh wall time.
    fn hot_total(&self) -> Duration {
        self.sample + self.refresh
    }
}

fn main() {
    let smoke = smoke_mode();
    let reps = if smoke { 2 } else { 3 };
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_threads = sider_par::threads_from_env();
    let mut thread_counts = vec![1usize, 2, max_threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let (ns, ds): (&[usize], &[usize]) = if smoke {
        (&[1_000], &[5, 16])
    } else {
        (&[1_000, 10_000, 100_000], &[5, 16, 64])
    };
    let scenarios: Vec<Scenario> = ns
        .iter()
        .flat_map(|&n| ds.iter().map(move |&d| Scenario { n, d }))
        .collect();

    let mut scenario_jsons = Vec::new();
    for sc in &scenarios {
        let json = run_scenario(sc, &thread_counts, max_threads, reps);
        scenario_jsons.push(json);
    }

    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"smoke\": {smoke},\n  \"available_parallelism\": {available},\n  \"max_threads\": {max_threads},\n  \"reps\": {reps},\n  \"classes\": {N_CLASSES},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenario_jsons.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    // A swallowed write failure would let the CI schema check pass green
    // on a stale committed artifact — fail the bench run instead.
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("scaling: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("scaling: wrote {path}");
}

/// Synthetic fitted background: `N_CLASSES` well-conditioned anisotropic
/// Gaussians assigned round-robin to rows.
fn build_background(n: usize, d: usize, seed: u64) -> (BackgroundDistribution, Vec<ClassParams>) {
    let mut rng = Rng::seed_from_u64(seed);
    let params: Vec<ClassParams> = (0..N_CLASSES)
        .map(|_| {
            let r = rng.standard_normal_matrix(d, d).scale(0.3);
            let mut prec = r.gram();
            for i in 0..d {
                prec[(i, i)] += 1.0;
            }
            let mut p = ClassParams::prior(d, n / N_CLASSES);
            p.m = rng.standard_normal_vec(d);
            p.prec = prec;
            p
        })
        .collect();
    let class_of_row: Vec<u32> = (0..n).map(|i| (i % N_CLASSES) as u32).collect();
    let bg = BackgroundDistribution::from_class_params(d, class_of_row, &params);
    (bg, params)
}

fn run_scenario(sc: &Scenario, thread_counts: &[usize], max_threads: usize, reps: usize) -> String {
    let (n, d) = (sc.n, sc.d);
    let (bg, params) = build_background(n, d, 0x5eed ^ (n as u64) ^ ((d as u64) << 32));
    let class_of_row: Vec<u32> = (0..n).map(|i| (i % N_CLASSES) as u32).collect();
    let parents: Vec<u32> = (0..N_CLASSES as u32).collect();
    let mean_clean = vec![false; N_CLASSES];
    let cov_dirty = vec![true; N_CLASSES];
    let w = Rng::seed_from_u64(7).standard_normal_matrix(d, d);

    // ---- The feedback round being refreshed: every class's precision
    // moves by k rank-1 directions (as a warm solver fit logs them), so
    // the full path re-decomposes from scratch while the incremental
    // path replays the k moves against the cached spectrum. ----
    let k = pending_rank(d);
    let mut dir_rng = Rng::seed_from_u64(0xd1f ^ (n as u64) ^ ((d as u64) << 24));
    let pending: Vec<Vec<(Vec<f64>, f64)>> = (0..N_CLASSES)
        .map(|c| {
            (0..k)
                .map(|j| {
                    let mut dir = dir_rng.standard_normal_vec(d);
                    let norm = vector::norm2(&dir).max(1e-12);
                    vector::scale(&mut dir, 1.0 / norm);
                    // Moderate positive multipliers (a variance-shrinking
                    // feedback step), varied per class and direction.
                    let lam = 0.3 + 0.15 * ((c + j) % 5) as f64;
                    (dir, lam)
                })
                .collect()
        })
        .collect();
    let updated_params: Vec<ClassParams> = params
        .iter()
        .zip(&pending)
        .map(|(p, moves)| {
            let mut p = p.clone();
            for (dir, lam) in moves {
                let r = woodbury::prepare(&p.sigma, dir);
                woodbury::apply(&mut p.sigma, &r, *lam);
                woodbury::precision_update(&mut p.prec, dir, *lam);
            }
            p
        })
        .collect();
    let rank1_log: Vec<Vec<(&[f64], f64)>> = pending
        .iter()
        .map(|moves| {
            moves
                .iter()
                .map(|(dir, lam)| (dir.as_slice(), *lam))
                .collect()
        })
        .collect();
    let empty_log: Vec<Vec<(&[f64], f64)>> = Vec::new();

    // ---- PR-1 baseline: allocation-per-row sampling, non-early-exit
    // Jacobi refresh, both serial. The spectral factors are prepared
    // outside the timed region — PR-1's sample() read them from the
    // ClassModel cache, so timing their construction would double-count
    // the refresh stage and inflate the serial speedup. ----
    let factors = pr1_factors(&bg);
    let baseline_sample = median_of(reps, || {
        let mut rng = Rng::seed_from_u64(11);
        time(|| pr1_sample(&bg, &factors, &mut rng)).1
    });
    let baseline_refresh = median_of(reps, || time(|| pr1_refresh_all(&updated_params)).1);

    // ---- Incremental-vs-full agreement (thread-independent, by the
    // pool determinism contract — checked once, serially): the two modes
    // must produce the same whitening transform (same spectrum within
    // secular tolerance) for the speedup comparison to be meaningful,
    // and the scenario must actually drive the fast path. ----
    let serial = ThreadPool::serial();
    let refresh_stats: RefreshStats;
    {
        let mut incr = bg.clone();
        refresh_stats = incr.refresh_from_class_params_with(
            class_of_row.clone(),
            &updated_params,
            &parents,
            &mean_clean,
            &cov_dirty,
            &rank1_log,
            &serial,
        );
        if refresh_stats.eigen_rank_updated != N_CLASSES {
            eprintln!(
                "scaling/{n}x{d}: incremental refresh did not take the fast path: {refresh_stats:?}"
            );
            std::process::exit(1);
        }
        let mut full = bg.clone();
        full.refresh_from_class_params_with(
            class_of_row.clone(),
            &updated_params,
            &parents,
            &mean_clean,
            &cov_dirty,
            &empty_log,
            &serial,
        );
        let mut rng = Rng::seed_from_u64(11);
        let sampled = bg.sample_with(&mut rng, &serial);
        let incr_whitened = incr.whiten_with(&sampled, &serial).unwrap();
        let full_whitened = full.whiten_with(&sampled, &serial).unwrap();
        let agree = incr_whitened.max_abs_diff(&full_whitened);
        let agree_ok = agree.is_finite() && agree < 1e-6;
        if !agree_ok {
            eprintln!("scaling/{n}x{d}: incremental vs full refresh disagree by {agree}");
            std::process::exit(1);
        }
    }

    // ---- Cold eigensolver: raw Jacobi vs the decompose dispatch on one
    // class precision (the O(d³) kernel behind every cold refresh and
    // cold refit). Spectrum agreement is gated before the ratio is
    // trusted: a fast-but-wrong solver must not produce a metric. ----
    let prec0 = bg.precision(0).clone();
    let eigen_jacobi = median_of(reps, || time(|| sym_eigen(&prec0).expect("bench jacobi")).1);
    let eigen_dc = median_of(reps, || {
        time(|| SymEigen::decompose(&prec0).expect("bench decompose")).1
    });
    {
        let jac = sym_eigen(&prec0).expect("bench jacobi");
        let dc = SymEigen::decompose(&prec0).expect("bench decompose");
        let scale = prec0.frobenius_norm().max(1.0);
        let worst = jac
            .values
            .iter()
            .zip(&dc.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let recon = dc.reconstruct().max_abs_diff(&prec0);
        if !(worst.is_finite() && worst <= 1e-9 * scale && recon <= 1e-9 * scale) {
            eprintln!(
                "scaling/{n}x{d}: D&C disagrees with Jacobi: values off {worst:.3e}, reconstruction off {recon:.3e}"
            );
            std::process::exit(1);
        }
    }
    let dc_speedup = ratio(eigen_jacobi, eigen_dc);

    // ---- Current kernels at each thread count. ----
    let mut runs: Vec<StageTimes> = Vec::new();
    let mut bit_identical = true;
    let mut reference: Option<(Matrix, Matrix, Matrix, Matrix, Matrix)> = None;
    for &threads in thread_counts {
        let pool = ThreadPool::new(threads);

        let sample = median_of(reps, || {
            let mut rng = Rng::seed_from_u64(11);
            time(|| bg.sample_with(&mut rng, &pool)).1
        });
        let refresh = median_of(reps, || {
            let mut target = bg.clone();
            time(|| {
                target.refresh_from_class_params_with(
                    class_of_row.clone(),
                    &updated_params,
                    &parents,
                    &mean_clean,
                    &cov_dirty,
                    &rank1_log,
                    &pool,
                )
            })
            .1
        });
        let refresh_full = median_of(reps, || {
            let mut target = bg.clone();
            time(|| {
                target.refresh_from_class_params_with(
                    class_of_row.clone(),
                    &updated_params,
                    &parents,
                    &mean_clean,
                    &cov_dirty,
                    &empty_log,
                    &pool,
                )
            })
            .1
        });

        // Materialize the incrementally refreshed distribution at this
        // pool size: its whitening output enters the bit-identity check
        // below (the full-mode agreement was established once above).
        let mut incr = bg.clone();
        incr.refresh_from_class_params_with(
            class_of_row.clone(),
            &updated_params,
            &parents,
            &mean_clean,
            &cov_dirty,
            &rank1_log,
            &pool,
        );

        let mut rng = Rng::seed_from_u64(11);
        let sampled = bg.sample_with(&mut rng, &pool);
        let whiten = median_of(reps, || time(|| bg.whiten_with(&sampled, &pool).unwrap()).1);
        let whitened = bg.whiten_with(&sampled, &pool).unwrap();
        let refreshed_whitened = incr.whiten_with(&sampled, &pool).unwrap();
        let pca = median_of(reps, || {
            time(|| pca_directions_with(&whitened, &pool).unwrap()).1
        });
        let matmul = median_of(reps, || time(|| sampled.matmul_with(&w, &pool)).1);

        // Determinism cross-check against the first (1-thread) run —
        // including the fused whiten+moment kernel of the view path.
        let directions = pca_directions_with(&whitened, &pool).unwrap().directions;
        let fused_moment = bg.whitened_second_moment_with(&sampled, &pool).unwrap();
        match &reference {
            None => {
                reference = Some((
                    sampled,
                    whitened,
                    directions,
                    refreshed_whitened,
                    fused_moment,
                ))
            }
            Some((s0, w0, d0, r0, m0)) => {
                bit_identical &= s0.as_slice() == sampled.as_slice()
                    && w0.as_slice() == whitened.as_slice()
                    && d0.as_slice() == directions.as_slice()
                    && r0.as_slice() == refreshed_whitened.as_slice()
                    && m0.as_slice() == fused_moment.as_slice();
            }
        }

        runs.push(StageTimes {
            threads,
            sample,
            refresh,
            refresh_full,
            whiten,
            pca,
            matmul,
        });
    }

    // ---- Crash recovery: rebuild an n×d session from its op-log. ----
    let (recover, recover_ops, wal_bytes) = bench_recovery(n, d, reps);

    let t1 = runs
        .iter()
        .find(|r| r.threads == 1)
        .expect("1-thread run present");
    // The "max" of the acceptance metric is SIDER_THREADS / available
    // parallelism — not the largest count benched (the 2-thread row is
    // benched even on 1-CPU hosts to keep the grid shape stable).
    let tmax = runs
        .iter()
        .find(|r| r.threads == max_threads)
        .expect("max-thread run present");
    let baseline_total = baseline_sample + baseline_refresh;
    let serial_speedup = ratio(baseline_total, t1.hot_total());
    let parallel_speedup = ratio(t1.hot_total(), tmax.hot_total());
    let incremental_speedup = ratio(t1.refresh_full, t1.refresh);

    println!(
        "scaling/{n}x{d}: pr1 {:.1}ms -> serial {:.1}ms ({serial_speedup:.2}x, refresh rank-{k} incr {incremental_speedup:.2}x vs full, cold eigen dc {dc_speedup:.2}x vs jacobi) -> {} threads {:.1}ms ({parallel_speedup:.2}x), recover {:.1}ms/{recover_ops} ops, bit_identical={bit_identical}",
        baseline_total.as_secs_f64() * 1e3,
        t1.hot_total().as_secs_f64() * 1e3,
        tmax.threads,
        tmax.hot_total().as_secs_f64() * 1e3,
        recover.as_secs_f64() * 1e3,
    );

    let runs_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "        {{ \"threads\": {}, \"sample_ns\": {}, \"refresh_ns\": {}, \"refresh_full_ns\": {}, \"whiten_ns\": {}, \"pca_ns\": {}, \"matmul_ns\": {}, \"hot_total_ns\": {} }}",
                r.threads,
                r.sample.as_nanos(),
                r.refresh.as_nanos(),
                r.refresh_full.as_nanos(),
                r.whiten.as_nanos(),
                r.pca.as_nanos(),
                r.matmul.as_nanos(),
                r.hot_total().as_nanos(),
            )
        })
        .collect();
    let refresh_mode = format!(
        "{{ \"rank\": {k}, \"full_ns\": {}, \"incremental_ns\": {}, \"incremental_speedup\": {incremental_speedup:.3}, \"eigen_rank_updated\": {}, \"rank1_directions_applied\": {} }}",
        t1.refresh_full.as_nanos(),
        t1.refresh.as_nanos(),
        refresh_stats.eigen_rank_updated,
        refresh_stats.rank1_directions_applied,
    );
    let store_json = format!(
        "{{ \"recover_ns\": {}, \"recover_ops\": {recover_ops}, \"wal_bytes\": {wal_bytes} }}",
        recover.as_nanos(),
    );
    let eigen_json = format!(
        "{{ \"jacobi_ns\": {}, \"dc_ns\": {}, \"dc_speedup\": {dc_speedup:.3} }}",
        eigen_jacobi.as_nanos(),
        eigen_dc.as_nanos(),
    );
    format!
        (
        "    {{\n      \"n\": {n},\n      \"d\": {d},\n      \"baseline_pr1\": {{ \"sample_ns\": {}, \"refresh_ns\": {}, \"hot_total_ns\": {} }},\n      \"refresh_mode\": {refresh_mode},\n      \"eigen\": {eigen_json},\n      \"store\": {store_json},\n      \"runs\": [\n{}\n      ],\n      \"bit_identical_across_threads\": {bit_identical},\n      \"serial_speedup_vs_pr1\": {serial_speedup:.3},\n      \"parallel_speedup_max_vs_1\": {parallel_speedup:.3}\n    }}",
        baseline_sample.as_nanos(),
        baseline_refresh.as_nanos(),
        baseline_total.as_nanos(),
        runs_json.join(",\n"),
    )
}

/// Time rebuilding an `n × d` session from a real on-disk op-log: the
/// history (create + 2 knowledge/update rounds + a view) is written
/// through the production `Store` append path, then recovered with the
/// production replay path on a 1-thread pool. Returns the median
/// recovery wall time, the op count and the WAL size. The recovered
/// state is fingerprinted against a live twin once before timing — a
/// recovery that reproduced the wrong bytes must not produce a metric.
fn bench_recovery(n: usize, d: usize, reps: usize) -> (Duration, u64, u64) {
    let dir = std::env::temp_dir().join(format!(
        "sider_bench_recover_{}_{n}x{d}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = StoreConfig::new(&dir);
    config.fsync = FsyncPolicy::Never; // timing replay, not disk flushes
    let store = Store::open(config).expect("open bench store");

    // The dataset arrives via the resolver (the builtin-name twin of the
    // server path, minus CSV parsing), regenerated identically per call.
    let seed = 0xbe2c ^ (n as u64) ^ ((d as u64) << 32);
    let resolver = move |_body: &Json| -> Result<sider_data::Dataset, String> {
        let mut rng = Rng::seed_from_u64(seed);
        Ok(sider_data::Dataset::unlabeled(
            "bench",
            rng.standard_normal_matrix(n, d),
        ))
    };

    let k = 64usize; // n >= 1000 in every scenario
    let rows = |r: std::ops::Range<usize>| Json::Arr(r.map(|i| Json::from(i as f64)).collect());
    let knowledge =
        |r: std::ops::Range<usize>| Json::obj([("kind", Json::from("cluster")), ("rows", rows(r))]);
    let history: Vec<(OpKind, Json)> = vec![
        (OpKind::Knowledge, knowledge(0..k)),
        (OpKind::Update, Json::obj([])),
        (OpKind::View, Json::obj([("method", Json::from("pca"))])),
        (OpKind::Knowledge, knowledge(k..2 * k)),
        (OpKind::Update, Json::obj([])),
    ];
    let create = Json::obj([("dataset", Json::from("bench")), ("seed", Json::from(7.0))]);
    store.create_session(1, &create).expect("log create");
    for (kind, body) in &history {
        store.append(1, *kind, body).expect("log op");
    }
    let wal_bytes = store.status_of(1).expect("status").wal_bytes;
    let recover_ops = 1 + history.len() as u64;

    // Correctness gate: recovered state must match a live twin bitwise.
    let pool = Arc::new(ThreadPool::new(1));
    {
        let mut live = sider_store::ops::create_session(&create, Arc::clone(&pool), &resolver)
            .expect("live create");
        for (kind, body) in &history {
            sider_store::ops::apply(&mut live, *kind, body).expect("live op");
        }
        let recovered = store
            .recover_session_with(1, Arc::clone(&pool), &resolver)
            .expect("recover");
        let live_w = live.whitened().expect("live whiten");
        let rec_w = recovered.whitened().expect("recovered whiten");
        if live_w.as_slice() != rec_w.as_slice()
            || live.information_nats().to_bits() != recovered.information_nats().to_bits()
        {
            eprintln!("scaling/{n}x{d}: recovery is not bit-identical to the live session");
            std::process::exit(1);
        }
    }

    let recover = median_of(reps, || {
        time(|| {
            store
                .recover_session_with(1, Arc::clone(&pool), &resolver)
                .expect("recover")
        })
        .1
    });
    let _ = std::fs::remove_dir_all(&dir);
    (recover, recover_ops, wal_bytes)
}

fn median_of(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let mut times: Vec<Duration> = (0..reps).map(|_| f()).collect();
    median_duration(&mut times)
}

fn ratio(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-12)
}

// ---------------------------------------------------------------------------
// PR-1 reference kernels (the code shape before this subsystem landed).
// ---------------------------------------------------------------------------

/// Per-class spectral factors, prepared once like ClassModel caches them
/// at fit time (outside the sampling hot path).
fn pr1_factors(bg: &BackgroundDistribution) -> Vec<(Matrix, Vec<f64>)> {
    (0..N_CLASSES)
        .map(|c| {
            // Any row of class c (round-robin assignment ⇒ row c).
            let eig = sym_eigen(bg.precision(c)).expect("bench precision eigen");
            let scale: Vec<f64> = eig
                .values
                .iter()
                .map(|&ev| {
                    let ev = ev.max(0.0);
                    if ev >= 1e10 {
                        0.0
                    } else if ev > 1e-12 {
                        1.0 / ev.sqrt()
                    } else {
                        1.0
                    }
                })
                .collect();
            (eig.vectors, scale)
        })
        .collect()
}

/// PR-1 sampling loop: sequential shared RNG, one `standard_normal_vec`
/// and one `matvec` allocation per row, `set_row` copy into the output.
fn pr1_sample(
    bg: &BackgroundDistribution,
    factors: &[(Matrix, Vec<f64>)],
    rng: &mut Rng,
) -> Matrix {
    let n = bg.n();
    let d = bg.d();
    let mut out = Matrix::zeros(n, d);
    for i in 0..n {
        let (u, scale) = &factors[bg.class_of_row(i)];
        let mut z = rng.standard_normal_vec(d);
        for (zk, &s) in z.iter_mut().zip(scale) {
            *zk *= s;
        }
        let mut x = u.matvec(&z);
        vector::axpy(1.0, bg.mean(i), &mut x);
        out.set_row(i, &x);
    }
    out
}

/// PR-1 refresh: serial per-class eigendecomposition with the
/// pre-early-exit cyclic Jacobi, plus the whitening-map reconstruction.
fn pr1_refresh_all(params: &[ClassParams]) -> Vec<(Matrix, Matrix)> {
    params
        .iter()
        .map(|p| {
            let d = p.prec.rows();
            let eig = pr1_jacobi(&p.prec);
            let mut whiten = Matrix::zeros(d, d);
            for k in 0..eig.0.len() {
                let ev = eig.0[k].max(0.0);
                if ev >= 1e10 {
                    continue;
                }
                let col = eig.1.col(k);
                whiten.add_outer(ev.sqrt(), &col, &col);
            }
            (whiten, eig.1)
        })
        .collect()
}

/// The pre-early-exit cyclic Jacobi: rotates every pivot above 1e-300 and
/// checks convergence only at sweep boundaries.
fn pr1_jacobi(a: &Matrix) -> (Vec<f64>, Matrix) {
    let n = a.rows();
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Matrix::identity(n);
    let norm = m.frobenius_norm().max(1e-300);
    let tol = 1e-14 * norm;
    for _sweep in 0..64 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += 2.0 * m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for k in 0..n {
                    if k != p && k != q {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(p, k)] = m[(k, p)];
                        m[(k, q)] = s * mkp + c * mkq;
                        m[(q, k)] = m[(k, q)];
                    }
                }
                m[(p, p)] = app - t * apq;
                m[(q, q)] = aqq + t * apq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    ((0..n).map(|i| m[(i, i)]).collect(), v)
}
