//! Ablation: Sherman–Morrison rank-1 covariance update (the paper's O(d²)
//! trick) versus recomputing the inverse from scratch (O(d³)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sider_linalg::{lu, woodbury, Matrix};
use sider_stats::Rng;
use std::hint::black_box;

fn spd(d: usize, rng: &mut Rng) -> Matrix {
    let a = rng.standard_normal_matrix(d + 4, d);
    let mut g = a.gram().scale(1.0 / (d + 4) as f64);
    for i in 0..d {
        g[(i, i)] += 0.5;
    }
    g
}

fn bench_woodbury(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank1_update");
    for d in [16usize, 32, 64, 128] {
        let mut rng = Rng::seed_from_u64(d as u64);
        let prec = spd(d, &mut rng);
        let sigma = lu::inverse(&prec).expect("inverse");
        let w = rng.standard_normal_vec(d);
        let lambda = 0.7;

        group.bench_with_input(BenchmarkId::new("woodbury", d), &d, |b, _| {
            b.iter(|| black_box(woodbury::updated(&sigma, &w, lambda)))
        });
        group.bench_with_input(BenchmarkId::new("full_inverse", d), &d, |b, _| {
            b.iter(|| {
                let mut p = prec.clone();
                woodbury::precision_update(&mut p, &w, lambda);
                black_box(lu::inverse(&p).expect("inverse"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_woodbury);
criterion_main!(benches);
