//! Ablation: equivalence-class solver (cost independent of n) versus the
//! naive per-row solver (O(n·d³) per constraint) — the paper's first
//! speed-up claim, measured head-to-head on identical problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sider_data::synthetic::runtime_dataset;
use sider_maxent::constraint::{cluster_constraints, margin_constraints};
use sider_maxent::naive::NaiveSolver;
use sider_maxent::{Constraint, RowSet, Solver};
use std::hint::black_box;

fn problem(n: usize) -> (sider_linalg::Matrix, Vec<Constraint>) {
    let ds = runtime_dataset(n, 8, 2, 13);
    let labels = ds.primary_labels().expect("labels");
    let mut cs = margin_constraints(&ds.matrix).expect("margins");
    for c in 0..2 {
        cs.extend(
            cluster_constraints(
                &ds.matrix,
                RowSet::from_indices(&labels.class_indices(c)),
                format!("c{c}"),
            )
            .expect("cluster"),
        );
    }
    (ds.matrix.clone(), cs)
}

fn bench_eqclass(c: &mut Criterion) {
    let mut group = c.benchmark_group("eqclass_vs_naive");
    group.sample_size(10);
    for n in [128usize, 512, 2048] {
        let (data, cs) = problem(n);
        group.bench_with_input(BenchmarkId::new("eqclass", n), &n, |b, _| {
            b.iter(|| {
                let mut s = Solver::new(&data, cs.clone()).expect("solver");
                for _ in 0..5 {
                    s.sweep(1e12);
                }
                black_box(s.lambdas()[0])
            })
        });
        // The naive path is quadratic-ish in problem size; skip the
        // largest n to keep bench time sane.
        if n <= 512 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| {
                    let mut s = NaiveSolver::new(&data, cs.clone()).expect("solver");
                    for _ in 0..5 {
                        s.sweep(1e12);
                    }
                    black_box(s.lambdas()[0])
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_eqclass);
criterion_main!(benches);
