//! End-to-end pipeline stages on an interactive-scale dataset
//! (paper §III: every stage except OPTIM/ICA must feel instant):
//! whitening, background sampling, PCA view, a full
//! view→mark→update→view cycle, and — the hottest path of the interactive
//! loop — cold-fit vs. warm-refit of the background distribution after one
//! incremental knowledge statement. The cold/warm comparison is also
//! written to `BENCH_pipeline.json` so the speedup is tracked in the perf
//! trajectory across PRs.

use criterion::{criterion_group, criterion_main, fmt_duration, Criterion};
use sider_core::{EdaSession, SimulatedUser};
use sider_maxent::FitOpts;
use sider_projection::Method;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    // Smoke mode (SIDER_BENCH_SMOKE=1): fewer samples on the same dataset,
    // identical artifact schema — cheap enough for a CI schema check.
    let samples = if sider_bench::smoke_mode() { 3 } else { 10 };
    group.sample_size(samples);

    let dataset = sider_data::synthetic::xhat5(1000, 42);

    // Pre-fitted session for the stage benches.
    let mut session = EdaSession::new(dataset.clone(), 11).expect("session");
    session.add_margin_constraints().expect("margins");
    session
        .update_background(&FitOpts::default())
        .expect("update");

    group.bench_function("whiten_1000x5", |b| {
        b.iter(|| black_box(session.whitened().expect("whiten")))
    });

    let bg = session.background().clone();
    group.bench_function("sample_1000x5", |b| {
        let mut rng = sider_stats::Rng::seed_from_u64(5);
        b.iter(|| black_box(bg.sample(&mut rng)))
    });

    group.bench_function("pca_view_1000x5", |b| {
        let mut s = session.clone();
        b.iter(|| black_box(s.next_view(&Method::Pca).expect("view")))
    });

    group.bench_function("full_interaction_cycle", |b| {
        b.iter(|| {
            let mut s = EdaSession::new(dataset.clone(), 11).expect("session");
            let mut user = SimulatedUser::new(6, 25, 33);
            let view = s.next_view(&Method::Pca).expect("view");
            for cluster in user.perceive_clusters(&view) {
                s.add_cluster_constraint(&cluster).expect("constraint");
            }
            s.update_background(&FitOpts::default()).expect("update");
            black_box(s.next_view(&Method::Pca).expect("view"))
        })
    });

    // Round N of the loop: the session already absorbed margins + three
    // clusters; one more cluster statement arrives. The warm path appends
    // into the persistent solver engine; the cold path re-solves all
    // accumulated constraints from scratch.
    let base = {
        let mut s = EdaSession::new(dataset.clone(), 11).expect("session");
        s.add_margin_constraints().expect("margins");
        for k in 0..3 {
            let lo = k * 150;
            s.add_cluster_constraint(&(lo..lo + 120).collect::<Vec<_>>())
                .expect("cluster");
        }
        s.update_background(&FitOpts::default()).expect("update");
        s
    };
    let next_cluster: Vec<usize> = (600..720).collect();

    group.finish();

    // The warm-vs-cold comparison is measured once, outside the criterion
    // group, with the session clone + constraint staging excluded from the
    // timed region; the same samples feed both the printed lines and the
    // persisted JSON so they can never disagree.
    write_cold_vs_warm_json(&base, &next_cluster);
}

/// Median wall time of `routine` over pre-built inputs (setup excluded
/// from the timed region).
fn median_time<I>(inputs: Vec<I>, mut routine: impl FnMut(I)) -> Duration {
    let mut times: Vec<Duration> = inputs
        .into_iter()
        .map(|input| {
            let start = Instant::now();
            routine(input);
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Pre-built per-sample sessions with the next cluster already staged.
fn staged_sessions(base: &EdaSession, next_cluster: &[usize], samples: usize) -> Vec<EdaSession> {
    (0..samples)
        .map(|_| {
            let mut s = base.clone();
            s.add_cluster_constraint(next_cluster).expect("cluster");
            s
        })
        .collect()
}

/// Measure cold-fit vs warm-refit on the same state and persist the
/// comparison (wall time, sweep counts, eigendecompositions) to
/// `BENCH_pipeline.json` in the working directory.
fn write_cold_vs_warm_json(base: &EdaSession, next_cluster: &[usize]) {
    let samples = if sider_bench::smoke_mode() { 3 } else { 10 };
    let opts = FitOpts::default();

    let mut warm_sweeps = 0usize;
    let mut warm_eigen = 0usize;
    let warm = median_time(staged_sessions(base, next_cluster, samples), |mut s| {
        let report = s.update_background(&opts).expect("update");
        warm_sweeps = report.sweeps_done();
        warm_eigen = s.last_refresh_stats().expect("stats").eigen_recomputed;
    });

    let mut cold_sweeps = 0usize;
    let mut cold_eigen = 0usize;
    let cold = median_time(staged_sessions(base, next_cluster, samples), |mut s| {
        let report = s.refit_cold(&opts).expect("refit");
        cold_sweeps = report.sweeps_done();
        cold_eigen = s.last_refresh_stats().expect("stats").eigen_recomputed;
    });

    println!(
        "pipeline/update_warm_refit: median {} ({samples} samples, update only)",
        fmt_duration(warm)
    );
    println!(
        "pipeline/update_cold_fit: median {} ({samples} samples, update only)",
        fmt_duration(cold)
    );
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    let json = format!(
        "{{\n  \"bench\": \"pipeline_cold_vs_warm\",\n  \"dataset\": \"xhat5_1000x5\",\n  \"samples\": {samples},\n  \"cold_fit\": {{ \"median_ns\": {}, \"sweeps\": {cold_sweeps}, \"eigen_recomputed\": {cold_eigen} }},\n  \"warm_refit\": {{ \"median_ns\": {}, \"sweeps\": {warm_sweeps}, \"eigen_recomputed\": {warm_eigen} }},\n  \"speedup\": {speedup:.3}\n}}\n",
        cold.as_nanos(),
        warm.as_nanos(),
    );
    // Cargo runs benches from the package dir; anchor the artifact at the
    // workspace root so the perf trajectory always finds it in one place.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    // A swallowed write failure would let the CI schema check pass green
    // on a stale committed artifact — fail the bench run instead.
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("pipeline/cold_vs_warm: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("pipeline/cold_vs_warm: speedup {speedup:.2}x -> {path}");
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
