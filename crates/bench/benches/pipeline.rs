//! End-to-end pipeline stages on an interactive-scale dataset
//! (paper §III: every stage except OPTIM/ICA must feel instant):
//! whitening, background sampling, PCA view, and a full
//! view→mark→update→view cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use sider_core::{EdaSession, SimulatedUser};
use sider_maxent::FitOpts;
use sider_projection::Method;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    let dataset = sider_data::synthetic::xhat5(1000, 42);

    // Pre-fitted session for the stage benches.
    let mut session = EdaSession::new(dataset.clone(), 11).expect("session");
    session.add_margin_constraints().expect("margins");
    session
        .update_background(&FitOpts::default())
        .expect("update");

    group.bench_function("whiten_1000x5", |b| {
        b.iter(|| black_box(session.whitened().expect("whiten")))
    });

    let bg = session.background().clone();
    group.bench_function("sample_1000x5", |b| {
        let mut rng = sider_stats::Rng::seed_from_u64(5);
        b.iter(|| black_box(bg.sample(&mut rng)))
    });

    group.bench_function("pca_view_1000x5", |b| {
        let mut s = session.clone();
        b.iter(|| black_box(s.next_view(&Method::Pca).expect("view")))
    });

    group.bench_function("full_interaction_cycle", |b| {
        b.iter(|| {
            let mut s = EdaSession::new(dataset.clone(), 11).expect("session");
            let mut user = SimulatedUser::new(6, 25, 33);
            let view = s.next_view(&Method::Pca).expect("view");
            for cluster in user.perceive_clusters(&view) {
                s.add_cluster_constraint(&cluster).expect("constraint");
            }
            s.update_background(&FitOpts::default()).expect("update");
            black_box(s.next_view(&Method::Pca).expect("view"))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
