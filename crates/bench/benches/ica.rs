//! FastICA micro-benchmarks: scaling in n and d (paper: ≈ O(n·d²) per
//! iteration) and the three contrast functions (log-cosh default vs.
//! exp / kurtosis — an ablation on the paper's §II-C default choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sider_data::synthetic::runtime_dataset;
use sider_projection::{fastica, IcaOpts};
use sider_stats::gaussianity::Contrast;
use sider_stats::Rng;
use std::hint::black_box;

fn bench_ica(c: &mut Criterion) {
    let mut group = c.benchmark_group("ica");
    group.sample_size(10);

    for n in [512usize, 2048] {
        let ds = runtime_dataset(n, 8, 4, 3);
        group.bench_with_input(BenchmarkId::new("by_n", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = Rng::seed_from_u64(1);
                black_box(fastica(&ds.matrix, &IcaOpts::default(), &mut rng))
            })
        });
    }
    for d in [4usize, 8, 16] {
        let ds = runtime_dataset(512, d, 4, 5);
        group.bench_with_input(BenchmarkId::new("by_d", d), &d, |b, _| {
            b.iter(|| {
                let mut rng = Rng::seed_from_u64(1);
                black_box(fastica(&ds.matrix, &IcaOpts::default(), &mut rng))
            })
        });
    }
    for (name, contrast) in [
        ("logcosh", Contrast::LogCosh { alpha: 1.0 }),
        ("exp", Contrast::Exp),
        ("kurtosis", Contrast::Kurtosis),
    ] {
        let ds = runtime_dataset(512, 8, 4, 5);
        let opts = IcaOpts {
            contrast,
            ..IcaOpts::default()
        };
        group.bench_with_input(BenchmarkId::new("contrast", name), &name, |b, _| {
            b.iter(|| {
                let mut rng = Rng::seed_from_u64(1);
                black_box(fastica(&ds.matrix, &opts, &mut rng))
            })
        });
    }
    // Deflation vs symmetric decorrelation.
    for (name, symmetric) in [("symmetric", true), ("deflation", false)] {
        let ds = runtime_dataset(512, 8, 4, 5);
        let opts = IcaOpts {
            symmetric,
            ..IcaOpts::default()
        };
        group.bench_with_input(BenchmarkId::new("variant", name), &name, |b, _| {
            b.iter(|| {
                let mut rng = Rng::seed_from_u64(1);
                black_box(fastica(&ds.matrix, &opts, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ica);
criterion_main!(benches);
