//! OPTIM micro-benchmarks: background-distribution fitting across the
//! Table II axes (n, d, k) at reduced sizes — verifies the scaling claims
//! (independent of n; ≈ O(k·d³)) without the full grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sider_data::synthetic::runtime_dataset;
use sider_maxent::constraint::{cluster_constraints, margin_constraints};
use sider_maxent::{FitOpts, RowSet, Solver};
use std::hint::black_box;

fn constraints_for(ds: &sider_data::Dataset, k: usize) -> Vec<sider_maxent::Constraint> {
    let labels = ds.primary_labels().expect("labels");
    let mut cs = margin_constraints(&ds.matrix).expect("margins");
    if k > 1 {
        for c in 0..k {
            cs.extend(
                cluster_constraints(
                    &ds.matrix,
                    RowSet::from_indices(&labels.class_indices(c)),
                    format!("c{c}"),
                )
                .expect("cluster"),
            );
        }
    }
    cs
}

fn fit(ds: &sider_data::Dataset, k: usize) -> usize {
    let cs = constraints_for(ds, k);
    let mut solver = Solver::new(&ds.matrix, cs).expect("solver");
    let report = solver.fit(&FitOpts {
        max_sweeps: 200,
        ..FitOpts::default()
    });
    report.sweeps
}

fn bench_optim(c: &mut Criterion) {
    let mut group = c.benchmark_group("optim");
    group.sample_size(10);

    // Scaling in d (n, k fixed).
    for d in [8usize, 16, 32] {
        let ds = runtime_dataset(512, d, 4, 7);
        group.bench_with_input(BenchmarkId::new("by_d", d), &d, |b, _| {
            b.iter(|| black_box(fit(&ds, 4)))
        });
    }
    // Scaling in k (n, d fixed).
    for k in [1usize, 2, 4, 8] {
        let ds = runtime_dataset(512, 16, k, 9);
        group.bench_with_input(BenchmarkId::new("by_k", k), &k, |b, _| {
            b.iter(|| black_box(fit(&ds, k)))
        });
    }
    // Scaling in n (d, k fixed). NOTE: `fit` here includes constraint-target
    // construction and the equivalence-class partition, which are O(n) —
    // the paper's INIT stage. The OPTIM iterations themselves are
    // independent of n; the `table2` binary times the stages separately
    // and shows the flat OPTIM column.
    for n in [512usize, 2048, 8192] {
        let ds = runtime_dataset(n, 16, 4, 11);
        group.bench_with_input(BenchmarkId::new("by_n", n), &n, |b, _| {
            b.iter(|| black_box(fit(&ds, 4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optim);
criterion_main!(benches);
