//! Fig. 9 — the Image Segmentation use case (paper §IV-C), on the
//! segmentation-like simulated dataset (see DESIGN.md).
//!
//! Paper reference measurements:
//! * initial view: background scale wildly different from the data;
//! * after a 1-cluster constraint: ≥3 visible groups — 330 pure `sky`,
//!   316 mostly-`grass` (Jaccard 0.964), and a 5-class blob
//!   (Jaccard ≈ 0.2 each);
//! * after cluster constraints: remaining projections show mainly
//!   outliers.

use sider_bench::out_dir;
use sider_core::report::TextTable;
use sider_core::{EdaSession, SimulatedUser};
use sider_maxent::FitOpts;
use sider_projection::{ComponentOrder, IcaOpts, Method};
use sider_stats::metrics::{jaccard, jaccard_per_class};

fn main() {
    let dataset = sider_data::segmentation::segmentation_like(
        &sider_data::segmentation::SegmentationOpts::default(),
        2018,
    );
    let classes = dataset.labels[0].clone();
    let outliers = dataset.labels[1].clone();
    println!(
        "segmentation-like: {} rows × {} attributes; 7 classes × 330; {} injected outliers",
        dataset.n(),
        dataset.d(),
        outliers.class_indices(1).len()
    );
    let mut session = EdaSession::new(dataset, 3).expect("session");
    let ica_clusters = Method::Ica(IcaOpts {
        order: ComponentOrder::SignedDesc,
        ..IcaOpts::default()
    });
    let fit = FitOpts {
        time_cutoff: Some(std::time::Duration::from_secs(10)),
        ..FitOpts::default()
    };

    // Initial scale mismatch (Fig. 9a).
    let view0 = session.next_view(&Method::Pca).expect("view 0");
    println!(
        "\ninitial top PCA score: {:.1} (paper: 'scale of background significantly differs')",
        view0.scores()[0]
    );
    view0
        .to_scatter_plot("Fig 9a: initial view", None)
        .save(out_dir().join("fig9a.svg"))
        .expect("svg");

    session.add_one_cluster_constraint().expect("1-cluster");
    session.update_background(&fit).expect("update");

    let mut user = SimulatedUser::new(7, 50, 9);
    let mut marked: Vec<Vec<usize>> = Vec::new();
    let mut summary = TextTable::new(&[
        "view",
        "marked",
        "best class",
        "Jaccard",
        "overlapping classes",
    ]);
    for step in 1..=4 {
        let view = session.next_view(&ica_clusters).expect("view");
        if view.scores()[0] < 0.004 {
            break;
        }
        let clusters = user.perceive_clusters(&view);
        let fresh: Vec<Vec<usize>> = clusters
            .into_iter()
            .filter(|c| marked.iter().all(|m| jaccard(c, m) < 0.6))
            .collect();
        if fresh.is_empty() {
            break;
        }
        for cluster in &fresh {
            let js = jaccard_per_class(cluster, &classes.assignments, 7);
            let mut ranked: Vec<(usize, f64)> = js.iter().copied().enumerate().collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let overlapping = js.iter().filter(|&&x| x > 0.1).count();
            summary.row(vec![
                step.to_string(),
                cluster.len().to_string(),
                classes.class_names[ranked[0].0].clone(),
                format!("{:.3}", ranked[0].1),
                overlapping.to_string(),
            ]);
            session.add_cluster_constraint(cluster).expect("constraint");
            marked.push(cluster.clone());
        }
        view.to_scatter_plot(
            &format!("Fig 9, view {step}"),
            fresh.first().map(|c| c.as_slice()),
        )
        .save(out_dir().join(format!("fig9_view{step}.svg")))
        .expect("svg");
        session.update_background(&fit).expect("update");
    }
    println!("\ngroup discovery (paper: sky pure; grass 0.964; blob ≈0.2 ×5):");
    println!("{}", summary.render());

    // Final view: outliers (Fig. 9f).
    let view_f = session
        .next_view(&Method::Ica(IcaOpts::default()))
        .expect("final view");
    let pts = view_f.points();
    let mut extremes: Vec<(usize, f64)> = pts
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| (i, x.abs().max(y.abs())))
        .collect();
    extremes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let true_outliers = outliers.class_indices(1);
    let top: Vec<usize> = extremes
        .iter()
        .take(true_outliers.len())
        .map(|&(i, _)| i)
        .collect();
    let hits = top.iter().filter(|i| true_outliers.contains(i)).count();
    println!(
        "final view (paper Fig. 9f: 'mainly outliers'): {hits}/{} most extreme points are injected outliers",
        top.len()
    );
    view_f
        .to_scatter_plot("Fig 9f: remaining outliers", Some(&true_outliers))
        .save(out_dir().join("fig9f.svg"))
        .expect("svg");
    println!("views written to {}/fig9*.svg", out_dir().display());
}
