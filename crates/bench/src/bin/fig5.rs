//! Fig. 5 — adversarial convergence (paper §II-A-2).
//!
//! Reproduces both panels: the analytic fixed points of constraint sets
//! C_A (Eq. 12) and C_B (Eq. 13), and the convergence trace of `(Σ₁)₁₁`
//! showing one-pass convergence for C_A versus harmonic `∝ 1/τ` decay
//! for C_B. Writes the log–log chart to `out/fig5b.svg`.

use sider_bench::out_dir;
use sider_core::report::TextTable;
use sider_linalg::Matrix;
use sider_maxent::{Constraint, RowSet, Solver};
use sider_plot::LineChart;

fn axis_constraints(data: &Matrix, rows: &[usize], tag: &str) -> Vec<Constraint> {
    let rows = RowSet::from_indices(rows);
    let e1 = vec![1.0, 0.0];
    let e2 = vec![0.0, 1.0];
    vec![
        Constraint::linear(data, rows.clone(), e1.clone(), format!("{tag}-l1")).unwrap(),
        Constraint::quadratic(data, rows.clone(), e1, format!("{tag}-q1")).unwrap(),
        Constraint::linear(data, rows.clone(), e2.clone(), format!("{tag}-l2")).unwrap(),
        Constraint::quadratic(data, rows, e2, format!("{tag}-q2")).unwrap(),
    ]
}

fn main() {
    let data = sider_data::synthetic::adversarial_toy();
    let case_a = axis_constraints(&data, &[0, 2], "a");
    let mut case_b = case_a.clone();
    case_b.extend(axis_constraints(&data, &[1, 2], "b"));

    let sweeps = 1000usize;
    let mut trace_a = Vec::with_capacity(sweeps);
    let mut trace_b = Vec::with_capacity(sweeps);
    let mut solver_a = Solver::new(&data, case_a).expect("solver A");
    let mut solver_b = Solver::new(&data, case_b).expect("solver B");
    for t in 1..=sweeps {
        solver_a.sweep(1e12);
        solver_b.sweep(1e12);
        trace_a.push((t as f64, solver_a.params_for_row(0).sigma[(0, 0)]));
        trace_b.push((t as f64, solver_b.params_for_row(0).sigma[(0, 0)]));
    }

    // Panel (a): the fixed points, against the analytic solutions.
    println!("Case A fixed point (paper Eq. 12: m1=m3=(1/2,0), m2=0, Σ1=diag(1/4,0), Σ2=I):");
    let mut ta = TextTable::new(&["row", "mean", "Σ diagonal"]);
    for row in 0..3 {
        let p = solver_a.params_for_row(row);
        ta.row(vec![
            format!("{}", row + 1),
            format!("({:+.4}, {:+.4})", p.m[0], p.m[1]),
            format!("({:.4}, {:.4})", p.sigma[(0, 0)], p.sigma[(1, 1)]),
        ]);
    }
    println!("{}", ta.render());

    println!("Case B fixed point (paper Eq. 13: m1=(1,0), m2=(0,1), m3=0, all Σ → 0):");
    let mut tb = TextTable::new(&["row", "mean", "Σ diagonal"]);
    for row in 0..3 {
        let p = solver_b.params_for_row(row);
        tb.row(vec![
            format!("{}", row + 1),
            format!("({:+.4}, {:+.4})", p.m[0], p.m[1]),
            format!("({:.2e}, {:.2e})", p.sigma[(0, 0)], p.sigma[(1, 1)]),
        ]);
    }
    println!("{}", tb.render());

    // Panel (b): convergence trace.
    println!("(Σ₁)₁₁ vs sweep (paper Fig. 5b):");
    let mut tc = TextTable::new(&["sweep", "case A", "case B"]);
    for &s in &[1usize, 2, 5, 10, 50, 100, 500, 1000] {
        tc.row(vec![
            s.to_string(),
            format!("{:.6e}", trace_a[s - 1].1),
            format!("{:.6e}", trace_b[s - 1].1),
        ]);
    }
    println!("{}", tc.render());

    // Harmonic decay check for case B.
    let tail: Vec<(f64, f64)> = trace_b
        .iter()
        .filter(|&&(t, _)| t >= 100.0)
        .map(|&(t, v)| (t.ln(), v.ln()))
        .collect();
    let n = tail.len() as f64;
    let mx = tail.iter().map(|p| p.0).sum::<f64>() / n;
    let my = tail.iter().map(|p| p.1).sum::<f64>() / n;
    let slope = tail.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>()
        / tail.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum::<f64>();
    println!("case B log–log slope (sweeps ≥ 100): {slope:.3}  — paper: (Σ₁)₁₁ ∝ τ⁻¹");

    let path = out_dir().join("fig5b.svg");
    LineChart::new("Fig 5b: convergence of (Σ₁)₁₁", "iterations", "(Σ₁)₁₁")
        .log_x()
        .log_y()
        .series("Case A", trace_a)
        .series("Case B", trace_b)
        .save(&path)
        .expect("svg");
    println!("chart written to {}", path.display());
}
