//! Figs. 7–8 — the British National Corpus use case (paper §IV-B), on
//! the BNC-like simulated corpus (see DESIGN.md for the substitution).
//!
//! Paper reference measurements:
//! * first selection ≈ 'transcribed conversations', Jaccard 0.928;
//! * second selection ≈ 'academic prose' + 'broadsheet newspaper'
//!   (Jaccard 0.63 / 0.35);
//! * afterwards "no apparent difference" (low PCA scores).

use sider_bench::out_dir;
use sider_core::report::{format_convergence, TextTable};
use sider_core::{EdaSession, SimulatedUser};
use sider_maxent::FitOpts;
use sider_projection::Method;
use sider_stats::metrics::{jaccard, jaccard_per_class};

fn main() {
    let dataset = sider_data::bnc::bnc_like_corpus(&sider_data::bnc::BncOpts::default(), 2018);
    let genres = dataset.primary_labels().expect("labels").clone();
    println!(
        "BNC-like corpus: {} texts × {} top words; genre sizes {:?}",
        dataset.n(),
        dataset.d(),
        genres.class_sizes()
    );
    let fit = FitOpts {
        lambda_tol: 1e-4,
        moment_tol: 1e-4,
        max_sweeps: 2000,
        time_cutoff: Some(std::time::Duration::from_secs(10)),
        ..FitOpts::default()
    };
    let mut session = EdaSession::new(dataset, 5).expect("session");
    session.add_margin_constraints().expect("margins");
    session.update_background(&fit).expect("update");

    let mut user = SimulatedUser::new(5, 20, 17);
    let mut marked: Vec<Vec<usize>> = Vec::new();
    let mut summary = TextTable::new(&[
        "view",
        "top PCA score",
        "selection size",
        "best genre",
        "Jaccard",
        "2nd genre",
        "Jaccard",
    ]);

    for step in 1..=4 {
        let view = session.next_view(&Method::Pca).expect("view");
        let top = view.scores()[0];
        if top < 0.02 {
            summary.row(vec![
                step.to_string(),
                format!("{top:.3}"),
                "-".into(),
                "(no striking difference)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            break;
        }
        let clusters = user.perceive_clusters(&view);
        let Some(selection) = clusters
            .iter()
            .rev()
            .find(|c| marked.iter().all(|m| jaccard(c, m) < 0.5))
            .cloned()
        else {
            break;
        };
        marked.push(selection.clone());
        let js = jaccard_per_class(&selection, &genres.assignments, 4);
        let mut ranked: Vec<(usize, f64)> = js.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        summary.row(vec![
            step.to_string(),
            format!("{top:.3}"),
            selection.len().to_string(),
            genres.class_names[ranked[0].0].clone(),
            format!("{:.3}", ranked[0].1),
            genres.class_names[ranked[1].0].clone(),
            format!("{:.3}", ranked[1].1),
        ]);
        view.to_scatter_plot(&format!("BNC view {step}"), Some(&selection))
            .save(out_dir().join(format!("fig7_8_view{step}.svg")))
            .expect("svg");
        session
            .add_cluster_constraint(&selection)
            .expect("constraint");
        let report = session.update_background(&fit).expect("update");
        eprintln!("view {step} update: {}", format_convergence(&report));
    }

    println!("\nBNC exploration summary (paper: conversations 0.928; then academic 0.63 / broadsheet 0.35; then no striking difference):");
    println!("{}", summary.render());
    println!("views written to {}/fig7_8_view*.svg", out_dir().display());
}
