//! Fig. 3 — pairplot of the synthetic dataset X̂₅.
//!
//! Colors correspond to the cluster identities A–D (the grouping in the
//! first three dimensions); the paper's plot is based on a 250-point
//! subsample, which `Pairplot::max_points(250)` mirrors.

use sider_bench::out_dir;
use sider_plot::Pairplot;

fn main() {
    let dataset = sider_data::synthetic::xhat5(1000, 42);
    let abcd = &dataset.labels[0];
    println!(
        "X̂₅: {} points × {} dims; A–D sizes {:?}, E–G sizes {:?}",
        dataset.n(),
        dataset.d(),
        abcd.class_sizes(),
        dataset.labels[1].class_sizes()
    );
    let columns: Vec<Vec<f64>> = (0..dataset.d()).map(|j| dataset.matrix.col(j)).collect();
    let path = out_dir().join("fig3_pairplot.svg");
    Pairplot::new(
        "Fig 3: Xhat5 pairplot (colors = clusters A-D)",
        columns,
        dataset.column_names.clone(),
    )
    .classes(abcd.assignments.clone())
    .max_points(250)
    .save(&path)
    .expect("svg");
    println!("pairplot written to {}", path.display());
}
