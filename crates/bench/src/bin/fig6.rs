//! Fig. 6 — pairplots of the whitened data Ŷ₅ at the three stages of the
//! X̂₅ exploration.
//!
//! (a) no constraints: Ŷ₅ = X̂₅ (whitening is the identity);
//! (b) after cluster constraints for the four clusters of Fig. 4a: the
//!     first three dimensions stop deviating from a unit Gaussian while
//!     dims 4–5 still do;
//! (c) after the further constraints of Fig. 4c: all of Ŷ₅ resembles a
//!     spherical unit Gaussian.
//!
//! Besides the pairplot SVGs we print per-dimension deviation statistics
//! (variance and the signed log-cosh negentropy offset), which is the
//! quantitative content of the figure.

use sider_bench::out_dir;
use sider_core::report::TextTable;
use sider_core::{EdaSession, SimulatedUser};
use sider_linalg::Matrix;
use sider_maxent::FitOpts;
use sider_projection::{IcaOpts, Method};
use sider_stats::gaussianity::{negentropy_offset, standardize_inplace, Contrast};

fn stage_stats(y: &Matrix, stage: &str, table: &mut TextTable) {
    for j in 0..y.cols() {
        let col = y.col(j);
        let var = sider_stats::descriptive::population_variance(&col);
        let mut std = col.clone();
        standardize_inplace(&mut std);
        let neg = negentropy_offset(&std, Contrast::default());
        table.row(vec![
            stage.to_string(),
            format!("X{}", j + 1),
            format!("{var:.3}"),
            format!("{neg:+.4}"),
        ]);
    }
}

fn save_pairplot(y: &Matrix, classes: &[usize], names: &[String], title: &str, file: &str) {
    let columns: Vec<Vec<f64>> = (0..y.cols()).map(|j| y.col(j)).collect();
    sider_plot::Pairplot::new(title, columns, names.to_vec())
        .classes(classes.to_vec())
        .max_points(250)
        .save(out_dir().join(file))
        .expect("svg");
}

fn main() {
    let dataset = sider_data::synthetic::xhat5(1000, 42);
    let abcd = dataset.labels[0].assignments.clone();
    let names = dataset.column_names.clone();
    let mut session = EdaSession::new(dataset, 11).expect("session");
    let mut user = SimulatedUser::new(8, 25, 33);
    let ica = Method::Ica(IcaOpts::default());
    let mut table = TextTable::new(&["stage", "dim", "variance", "negentropy offset"]);

    // Stage (a): no constraints.
    let y_a = session.whitened().expect("whiten");
    stage_stats(&y_a, "a: none", &mut table);
    save_pairplot(
        &y_a,
        &abcd,
        &names,
        "Fig 6a: whitened = raw (no constraints)",
        "fig6a.svg",
    );

    // Stage (b): constraints for the clusters visible in the first view.
    let view = session.next_view(&ica).expect("view");
    for c in user.perceive_clusters(&view) {
        session.add_cluster_constraint(&c).expect("constraint");
    }
    session
        .update_background(&FitOpts::default())
        .expect("update");
    let y_b = session.whitened().expect("whiten");
    stage_stats(&y_b, "b: 4 clusters", &mut table);
    save_pairplot(
        &y_b,
        &abcd,
        &names,
        "Fig 6b: whitened after dims 1-3 clusters",
        "fig6b.svg",
    );

    // Stage (c): constraints for the clusters of the next view.
    let view = session.next_view(&ica).expect("view");
    for c in user.perceive_clusters(&view) {
        session.add_cluster_constraint(&c).expect("constraint");
    }
    session
        .update_background(&FitOpts::default())
        .expect("update");
    let y_c = session.whitened().expect("whiten");
    stage_stats(&y_c, "c: +3 clusters", &mut table);
    save_pairplot(
        &y_c,
        &abcd,
        &names,
        "Fig 6c: whitened after all clusters",
        "fig6c.svg",
    );

    println!("Per-dimension deviation from the unit Gaussian (Fig. 6):");
    println!("{}", table.render());
    println!("expected shape: stage a deviates everywhere; stage b is Gaussian in X1–X3");
    println!("but not X4–X5; stage c is Gaussian everywhere.");
    println!(
        "pairplots written to {}/fig6{{a,b,c}}.svg",
        out_dir().display()
    );
}
