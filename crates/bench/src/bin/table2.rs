//! Table II — the runtime experiment (paper §IV-A).
//!
//! Grid: n ∈ {2048, 4096, 8192}, d ∈ {16, 32, 64, 128}, k ∈ {1, 2, 4, 8}.
//! For each dataset: margin constraints (2d) plus, for k > 1, cluster
//! constraints per cluster (2dk). Reported: median wall-clock of OPTIM
//! (fitting the background distribution, no time cutoff) and ICA, plus
//! the stage timings the paper says stay under 2 s (INIT, PREPROCESS,
//! WHITENING, SAMPLE, PCA).
//!
//! Flags: `--reps N` (default 3; the paper used 10), `--max-d D`
//! (default 128), `--max-n N` (default 8192), `--quick` (tiny grid for
//! smoke tests).

use sider_bench::{fmt_secs, median_duration, out_dir, time, Args};
use sider_core::report::TextTable;
use sider_data::synthetic::runtime_dataset;
use sider_maxent::constraint::{cluster_constraints, margin_constraints};
use sider_maxent::{FitOpts, RowSet, Solver};
use sider_projection::{fastica, pca_directions, IcaOpts};
use sider_stats::Rng;
use std::time::Duration;

struct CellTimes {
    init: Duration,
    optim: Duration,
    preprocess: Duration,
    whitening: Duration,
    sample: Duration,
    pca: Duration,
    ica: Duration,
    sweeps: usize,
}

fn run_cell(n: usize, d: usize, k: usize, seed: u64) -> CellTimes {
    let ds = runtime_dataset(n, d, k, seed);
    let data = &ds.matrix;
    let labels = ds.primary_labels().expect("labels").clone();

    // INIT: constraint construction + solver setup (equivalence classes).
    let ((mut solver, _), init) = time(|| {
        let mut cs = margin_constraints(data).expect("margins");
        if k > 1 {
            for c in 0..k {
                cs.extend(
                    cluster_constraints(
                        data,
                        RowSet::from_indices(&labels.class_indices(c)),
                        format!("c{c}"),
                    )
                    .expect("cluster"),
                );
            }
        }
        let solver = Solver::new(data, cs).expect("solver");
        (solver, ())
    });

    // OPTIM: fit without any time cutoff (paper Table II setup).
    let (report, optim) = time(|| {
        solver.fit(&FitOpts {
            max_sweeps: 1000,
            ..FitOpts::default()
        })
    });

    // PREPROCESS: build the distribution (spectral transforms per class).
    let (bg, preprocess) = time(|| solver.distribution());

    let (whitened, whitening) = time(|| bg.whiten(data).expect("whiten"));

    let mut rng = Rng::seed_from_u64(seed ^ 0x5A5A);
    let (_sampled, sample) = time(|| bg.sample(&mut rng));

    let (_pca, pca) = time(|| pca_directions(&whitened).expect("pca"));

    let mut rng_ica = Rng::seed_from_u64(seed ^ 0xA5A5);
    let (_ica, ica) = time(|| fastica(&whitened, &IcaOpts::default(), &mut rng_ica));

    CellTimes {
        init,
        optim,
        preprocess,
        whitening,
        sample,
        pca,
        ica,
        sweeps: report.sweeps,
    }
}

fn main() {
    let args = Args::from_env();
    let reps: usize = args.get_or("reps", 3);
    let (ns, ds_, ks): (Vec<usize>, Vec<usize>, Vec<usize>) = if args.flag("quick") {
        (vec![2048], vec![16, 32], vec![1, 2])
    } else {
        let max_d = args.get_or("max-d", 128usize);
        let max_n = args.get_or("max-n", 8192usize);
        (
            [2048, 4096, 8192]
                .into_iter()
                .filter(|&n| n <= max_n)
                .collect(),
            [16, 32, 64, 128]
                .into_iter()
                .filter(|&d| d <= max_d)
                .collect(),
            vec![1, 2, 4, 8],
        )
    };
    println!("Table II reproduction: median wall-clock over {reps} run(s), no time cutoff.");
    println!("(The paper's numbers are single-threaded R 3.4.0 on a 2.2 GHz MacBook Air;\n ours are this machine — compare scaling shapes, not absolute values.)\n");

    let mut table = TextTable::new(&["n", "d", "OPTIM (k=1,2,4,8)", "ICA (k=1,2,4,8)", "sweeps"]);
    let mut stage_worst = [Duration::ZERO; 5];
    let mut csv = String::from("n,d,k,init,optim,preprocess,whitening,sample,pca,ica,sweeps\n");

    for &n in &ns {
        for &d in &ds_ {
            let mut optim_cells = Vec::new();
            let mut ica_cells = Vec::new();
            let mut sweeps_cells = Vec::new();
            for &k in &ks {
                let mut optims = Vec::new();
                let mut icas = Vec::new();
                let mut sweeps = 0;
                for rep in 0..reps {
                    let t = run_cell(n, d, k, 1000 + rep as u64);
                    eprintln!(
                        "  [n={n} d={d} k={k} rep={rep}] optim {:.2}s, ica {:.2}s, {} sweeps",
                        t.optim.as_secs_f64(),
                        t.ica.as_secs_f64(),
                        t.sweeps
                    );
                    optims.push(t.optim);
                    icas.push(t.ica);
                    sweeps = sweeps.max(t.sweeps);
                    stage_worst[0] = stage_worst[0].max(t.init);
                    stage_worst[1] = stage_worst[1].max(t.preprocess);
                    stage_worst[2] = stage_worst[2].max(t.whitening);
                    stage_worst[3] = stage_worst[3].max(t.sample);
                    stage_worst[4] = stage_worst[4].max(t.pca);
                    csv.push_str(&format!(
                        "{n},{d},{k},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{}\n",
                        t.init.as_secs_f64(),
                        t.optim.as_secs_f64(),
                        t.preprocess.as_secs_f64(),
                        t.whitening.as_secs_f64(),
                        t.sample.as_secs_f64(),
                        t.pca.as_secs_f64(),
                        t.ica.as_secs_f64(),
                        t.sweeps,
                    ));
                }
                optim_cells.push(fmt_secs(median_duration(&mut optims)));
                ica_cells.push(fmt_secs(median_duration(&mut icas)));
                sweeps_cells.push(sweeps.to_string());
            }
            table.row(vec![
                n.to_string(),
                d.to_string(),
                format!("{{{}}}", optim_cells.join(", ")),
                format!("{{{}}}", ica_cells.join(", ")),
                format!("{{{}}}", sweeps_cells.join(",")),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "worst stage timings across the grid (paper: each < 2 s):\n  INIT {:.2}s  PREPROCESS {:.2}s  WHITENING {:.2}s  SAMPLE {:.2}s  PCA {:.2}s",
        stage_worst[0].as_secs_f64(),
        stage_worst[1].as_secs_f64(),
        stage_worst[2].as_secs_f64(),
        stage_worst[3].as_secs_f64(),
        stage_worst[4].as_secs_f64(),
    );
    let path = out_dir().join("table2.csv");
    std::fs::create_dir_all(out_dir()).expect("mkdir out");
    std::fs::write(&path, csv).expect("write csv");
    println!("\nper-run timings written to {}", path.display());
}
