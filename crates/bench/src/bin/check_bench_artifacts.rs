//! Schema sanity check for the persisted benchmark artifacts.
//!
//! CI runs the `pipeline`, `scaling` and `serve` benches in smoke mode
//! and then this binary, which fails (exit code 1) when
//! `BENCH_pipeline.json`, `BENCH_scaling.json` or `BENCH_serve.json` is
//! missing, unparsable, or missing the fields the perf trajectory across
//! PRs relies on. It deliberately does **not**
//! gate on cross-machine speedup values: CI machines (and 1-CPU
//! containers) make absolute timing thresholds meaningless — the guarded
//! invariants are artifact shape, the recorded
//! `bit_identical_across_threads` determinism flag, and the *same-run
//! relative* ratios that are machine-independent by construction:
//! `refresh_mode.incremental_speedup` (rank-1 spectral maintenance vs the
//! full Jacobi solve it replaces, measured back-to-back on identical
//! inputs) must be ≥ 1.0 wherever `d ≥ 16`, and `eigen.dc_speedup` (the
//! `SymEigen::decompose` divide-and-conquer dispatch vs raw Jacobi on the
//! same class precision) must be ≥ 1.0 wherever `d ≥ 32` — the dispatch
//! threshold above which D&C carries cold decompositions.
//!
//! For `BENCH_serve.json` the SLO-style gates are likewise
//! machine-independent: both a `stripes == 1` baseline run and a striped
//! run must be present, plus a striped `churn` scenario run (short-lived
//! aborted/empty connections injected alongside every request, with
//! `churn_conns >= 1` proving churn actually happened); every run must
//! have served its whole workload with zero errors, and each exercised
//! endpoint's percentiles must be monotone (`p50 ≤ p99 ≤ p999`) with
//! positive throughput.
//!
//! Every failure message names the offending file and the full JSON path
//! (e.g. `BENCH_scaling.json: scenarios[2].runs[1].sample_ns`), so a
//! broken artifact can be located without opening the file.

use sider_json::Json;
use std::process::ExitCode;

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn load(name: &str) -> Result<Json, String> {
    let path = workspace_root().join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: malformed JSON: {e}", path.display()))
}

/// Require a finite non-negative number at `prefix` + `key`, reporting the
/// full JSON path on failure.
fn require_num_at(doc: &Json, prefix: &str, key: &str) -> Result<f64, String> {
    let full = if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    };
    let v = doc
        .require_num(key)
        .map_err(|e| format!("at JSON path '{full}': {e}"))?;
    if v < 0.0 {
        return Err(format!("JSON path '{full}' is negative ({v})"));
    }
    Ok(v)
}

fn check_pipeline(doc: &Json) -> Result<(), String> {
    if doc.get("bench").and_then(Json::as_str) != Some("pipeline_cold_vs_warm") {
        return Err("JSON path 'bench' is not the string 'pipeline_cold_vs_warm'".into());
    }
    for key in [
        "samples",
        "cold_fit.median_ns",
        "cold_fit.sweeps",
        "cold_fit.eigen_recomputed",
        "warm_refit.median_ns",
        "warm_refit.sweeps",
        "warm_refit.eigen_recomputed",
        "speedup",
    ] {
        require_num_at(doc, "", key)?;
    }
    Ok(())
}

fn check_scaling(doc: &Json) -> Result<(), String> {
    if doc.get("bench").and_then(Json::as_str) != Some("scaling") {
        return Err("JSON path 'bench' is not the string 'scaling'".into());
    }
    for key in ["available_parallelism", "max_threads", "reps", "classes"] {
        if require_num_at(doc, "", key)? < 1.0 {
            return Err(format!("JSON path '{key}' must be >= 1"));
        }
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("missing 'scenarios' array")?;
    if scenarios.is_empty() {
        return Err("JSON path 'scenarios' is an empty array".into());
    }
    for (i, sc) in scenarios.iter().enumerate() {
        let at = format!("scenarios[{i}]");
        for key in [
            "n",
            "d",
            "baseline_pr1.sample_ns",
            "baseline_pr1.refresh_ns",
            "baseline_pr1.hot_total_ns",
            "refresh_mode.rank",
            "refresh_mode.full_ns",
            "refresh_mode.incremental_ns",
            "refresh_mode.incremental_speedup",
            "refresh_mode.eigen_rank_updated",
            "refresh_mode.rank1_directions_applied",
            "eigen.jacobi_ns",
            "eigen.dc_ns",
            "eigen.dc_speedup",
            "store.recover_ns",
            "store.recover_ops",
            "store.wal_bytes",
            "serial_speedup_vs_pr1",
            "parallel_speedup_max_vs_1",
        ] {
            require_num_at(sc, &at, key)?;
        }
        // The crash-recovery metric must come from a real replay: zero
        // recovered ops or a zero-duration recovery means the bench did
        // not actually rebuild the session from its op-log.
        for key in ["store.recover_ns", "store.recover_ops", "store.wal_bytes"] {
            if require_num_at(sc, &at, key)? < 1.0 {
                return Err(format!(
                    "JSON path '{at}.{key}' must be >= 1 (recovery was not exercised)"
                ));
            }
        }
        // The incremental spectral-maintenance path must actually have
        // carried the refresh, and at moderate dimension it must not lose
        // to the full Jacobi solve it replaces. (d < 16 is exempt: there
        // a full decomposition costs microseconds and the rank-1 path's
        // fixed overhead can win or lose in the noise.)
        if require_num_at(sc, &at, "refresh_mode.eigen_rank_updated")? < 1.0 {
            return Err(format!(
                "JSON path '{at}.refresh_mode.eigen_rank_updated': the scaling \
                 scenario did not exercise the incremental refresh path"
            ));
        }
        let d = require_num_at(sc, &at, "d")?;
        let incr_speedup = require_num_at(sc, &at, "refresh_mode.incremental_speedup")?;
        if d >= 16.0 && incr_speedup < 1.0 {
            return Err(format!(
                "JSON path '{at}.refresh_mode.incremental_speedup': {incr_speedup} < 1.0 \
                 at d = {d} — the rank-1 refresh lost to the full Jacobi path"
            ));
        }
        // The cold-eigensolver dispatch must not lose to the raw Jacobi
        // solve it wraps once the divide-and-conquer path engages
        // (`d ≥ 32`, the dispatch threshold). Below that the dispatch
        // *is* Jacobi and the ratio is pure timing noise. Same-run
        // relative ratio — machine-independent by construction.
        let dc_speedup = require_num_at(sc, &at, "eigen.dc_speedup")?;
        if d >= 32.0 && dc_speedup < 1.0 {
            return Err(format!(
                "JSON path '{at}.eigen.dc_speedup': {dc_speedup} < 1.0 at d = {d} — \
                 the divide-and-conquer solver lost to the Jacobi path it replaces"
            ));
        }
        if sc
            .path("bit_identical_across_threads")
            .and_then(Json::as_bool)
            != Some(true)
        {
            return Err(format!(
                "JSON path '{at}.bit_identical_across_threads': results were NOT \
                 bit-identical across thread counts"
            ));
        }
        let runs = sc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing '{at}.runs' array"))?;
        if runs.is_empty() {
            return Err(format!("JSON path '{at}.runs' is an empty array"));
        }
        for (j, run) in runs.iter().enumerate() {
            let at = format!("{at}.runs[{j}]");
            for key in [
                "threads",
                "sample_ns",
                "refresh_ns",
                "refresh_full_ns",
                "whiten_ns",
                "pca_ns",
                "matmul_ns",
                "hot_total_ns",
            ] {
                require_num_at(run, &at, key)?;
            }
        }
    }
    Ok(())
}

fn check_serve(doc: &Json) -> Result<(), String> {
    if doc.get("bench").and_then(Json::as_str) != Some("serve") {
        return Err("JSON path 'bench' is not the string 'serve'".into());
    }
    for key in [
        "workload.sessions",
        "workload.requests",
        "workload.rps",
        "workload.workers",
    ] {
        if require_num_at(doc, "", key)? < 1.0 {
            return Err(format!("JSON path '{key}' must be >= 1"));
        }
    }
    require_num_at(doc, "", "workload.seed")?;
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing 'runs' array")?;
    if runs.is_empty() {
        return Err("JSON path 'runs' is an empty array".into());
    }
    // The artifact's whole point is the striped-vs-unstriped comparison:
    // both the stripes=1 baseline and a striped run must be present —
    // and, since the event-driven accept loop, a striped `churn` run
    // (short-lived aborted/empty connections alongside every request)
    // served with zero errors. Since WAL shipping, also a `replication`
    // run: the same workload against a leader streaming to a live
    // follower, which must end caught up (zero lag). Since guided
    // exploration, also a `suggest` run: part of the mixed phase is
    // recommendation traffic, and the row embeds an in-process scoring
    // block over a full 64-candidate batch.
    let mut saw_unstriped = false;
    let mut saw_striped = false;
    let mut saw_churn = false;
    let mut saw_replication = false;
    let mut saw_suggest = false;
    for (i, run) in runs.iter().enumerate() {
        let at = format!("runs[{i}]");
        let stripes = require_num_at(run, &at, "stripes")?;
        if stripes < 1.0 {
            return Err(format!("JSON path '{at}.stripes' must be >= 1"));
        }
        saw_unstriped |= stripes == 1.0;
        saw_striped |= stripes > 1.0;
        let scenario = run.get("scenario").and_then(Json::as_str);
        let churn = scenario == Some("churn");
        if require_num_at(run, &at, "threads_per_stripe")? < 1.0 {
            return Err(format!("JSON path '{at}.threads_per_stripe' must be >= 1"));
        }
        if scenario == Some("replication") {
            saw_replication = true;
            // The leader's latency rows are gated below like every other
            // run; the replication-specific claim is the follower's: it
            // caught up to everything the leader shipped, per stripe.
            let f = format!("{at}.follower");
            if run.path("follower.caught_up").and_then(Json::as_bool) != Some(true) {
                return Err(format!("JSON path '{f}.caught_up' must be true"));
            }
            if require_num_at(run, &at, "follower.final_lag")? != 0.0 {
                return Err(format!(
                    "JSON path '{f}.final_lag' is nonzero — the follower never caught up"
                ));
            }
            require_num_at(run, &at, "follower.catchup_wall_s")?;
            for key in ["shipped", "applied"] {
                let seqs = run
                    .path(&format!("follower.{key}"))
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("missing '{f}.{key}' array"))?;
                if seqs.is_empty() {
                    return Err(format!("JSON path '{f}.{key}' is an empty array"));
                }
                if seqs.iter().all(|s| s.as_num() == Some(0.0)) {
                    return Err(format!(
                        "JSON path '{f}.{key}' is all zeros — nothing was replicated"
                    ));
                }
            }
        }
        if scenario == Some("suggest") {
            saw_suggest = true;
            // The run must carry real recommendation traffic (gated via
            // the endpoint stats below) and an in-process scoring block
            // over a full batch. Speedup is gated only as positive —
            // pool 4 beats pool 1 on multi-core hosts, but a 1-CPU CI
            // container legitimately reports ~1.
            if require_num_at(run, &at, "suggest.share")? <= 0.0 {
                return Err(format!("JSON path '{at}.suggest.share' must be > 0"));
            }
            let scoring = format!("{at}.scoring");
            if require_num_at(run, &at, "scoring.batch")? < 64.0 {
                return Err(format!("JSON path '{scoring}.batch' must be >= 64"));
            }
            for key in ["scoring.pool1_ns", "scoring.pool4_ns"] {
                if require_num_at(run, &at, key)? < 1.0 {
                    return Err(format!(
                        "JSON path '{at}.{key}' is zero — scoring was not timed"
                    ));
                }
            }
            if require_num_at(run, &at, "scoring.speedup")? <= 0.0 {
                return Err(format!("JSON path '{scoring}.speedup' must be > 0"));
            }
            let requests = require_num_at(run, &at, "report.endpoints.suggest.requests")?;
            if requests < 1.0 {
                return Err(format!(
                    "JSON path '{at}.report.endpoints.suggest.requests' must be >= 1 in the suggest scenario"
                ));
            }
        }
        let at = format!("{at}.report");
        let report = run.get("report").ok_or_else(|| format!("missing '{at}'"))?;
        if churn {
            saw_churn = true;
            if stripes < 2.0 {
                return Err(format!(
                    "JSON path '{at}': the churn scenario must run striped (stripes >= 2)"
                ));
            }
            // A churn run that opened no churn connections measured the
            // plain mixed workload under a misleading label.
            if require_num_at(report, &at, "churn_conns")? < 1.0 {
                return Err(format!(
                    "JSON path '{at}.churn_conns' must be >= 1 in the churn scenario"
                ));
            }
        }
        for key in ["create_wall_s", "mixed_wall_s"] {
            require_num_at(report, &at, key)?;
        }
        if require_num_at(report, &at, "total_requests")? < 1.0 {
            return Err(format!("JSON path '{at}.total_requests' must be >= 1"));
        }
        // An SLO-style gate that is machine-independent: the workload
        // must have been served clean. Latency *values* are not gated
        // (CI hardware varies), but their ordering must be sane.
        if require_num_at(report, &at, "total_errors")? != 0.0 {
            return Err(format!(
                "JSON path '{at}.total_errors' is nonzero — the server dropped requests under load"
            ));
        }
        if require_num_at(report, &at, "throughput_rps")? <= 0.0 {
            return Err(format!("JSON path '{at}.throughput_rps' must be > 0"));
        }
        let endpoints = report
            .get("endpoints")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("missing '{at}.endpoints' object"))?;
        if endpoints.is_empty() {
            return Err(format!("JSON path '{at}.endpoints' is empty"));
        }
        for (name, stats) in endpoints {
            let at = format!("{at}.endpoints.{name}");
            let requests = require_num_at(stats, &at, "requests")?;
            require_num_at(stats, &at, "errors")?;
            let p50 = require_num_at(stats, &at, "p50_ns")?;
            let p99 = require_num_at(stats, &at, "p99_ns")?;
            let p999 = require_num_at(stats, &at, "p999_ns")?;
            let throughput = require_num_at(stats, &at, "throughput_rps")?;
            if requests < 1.0 {
                continue; // endpoint unused by this workload mix
            }
            if !(p50 <= p99 && p99 <= p999) {
                return Err(format!(
                    "JSON path '{at}': percentiles not monotone (p50 {p50} / p99 {p99} / p999 {p999})"
                ));
            }
            if p50 < 1.0 {
                return Err(format!(
                    "JSON path '{at}.p50_ns' is zero — latencies were not measured"
                ));
            }
            if throughput <= 0.0 {
                return Err(format!("JSON path '{at}.throughput_rps' must be > 0"));
            }
        }
    }
    if !saw_unstriped {
        return Err("no 'runs' entry with stripes == 1 (the unstriped baseline)".into());
    }
    if !saw_striped {
        return Err("no 'runs' entry with stripes > 1 (the striped configuration)".into());
    }
    if !saw_churn {
        return Err(
            "no 'runs' entry with scenario == \"churn\" (the connection-churn stress run)".into(),
        );
    }
    if !saw_replication {
        return Err(
            "no 'runs' entry with scenario == \"replication\" (leader under active WAL shipping)"
                .into(),
        );
    }
    if !saw_suggest {
        return Err(
            "no 'runs' entry with scenario == \"suggest\" (guided-exploration recommendation load)"
                .into(),
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut failed = false;
    for (name, check) in [
        (
            "BENCH_pipeline.json",
            check_pipeline as fn(&Json) -> Result<(), String>,
        ),
        (
            "BENCH_scaling.json",
            check_scaling as fn(&Json) -> Result<(), String>,
        ),
        (
            "BENCH_serve.json",
            check_serve as fn(&Json) -> Result<(), String>,
        ),
    ] {
        match load(name).and_then(|doc| check(&doc)) {
            Ok(()) => println!("check_bench_artifacts: {name}: OK"),
            Err(e) => {
                eprintln!("check_bench_artifacts: {name}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
