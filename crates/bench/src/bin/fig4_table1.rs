//! Fig. 4 + Table I — the X̂₅ walkthrough with ICA views.
//!
//! Regenerates the paper's Table I: "ICA scores (sorted with absolute
//! value) for each of the iterative steps in Fig. 4", and writes the four
//! Fig. 4 panels as SVGs (initial ICA view with prior background, same
//! view after the four cluster constraints, the next most informative
//! view, and the view after the dims-4–5 constraints).
//!
//! Paper reference values:
//! ```text
//! Fig. 4a,b   0.041  0.037  0.035  0.034  -0.015
//! Fig. 4c     0.037  0.017  0.004  -0.003 -0.002
//! Fig. 4d    -0.008  0.004  -0.003  0.003 -0.002
//! ```
//! Exact values differ (different RNG and cluster draws); the shape to
//! verify is the drop toward ≈0 after each round of constraints.

use sider_bench::out_dir;
use sider_core::report::TextTable;
use sider_core::{EdaSession, SimulatedUser};
use sider_maxent::FitOpts;
use sider_projection::{IcaOpts, Method};
use sider_stats::metrics::best_class_match;

fn score_row(label: &str, scores: &[f64], table: &mut TextTable) {
    table.row(vec![
        label.to_string(),
        scores
            .iter()
            .map(|s| format!("{s:+.3}"))
            .collect::<Vec<_>>()
            .join("  "),
    ]);
}

fn main() {
    let dataset = sider_data::synthetic::xhat5(1000, 42);
    let abcd = dataset.labels[0].clone();
    let efg = dataset.labels[1].clone();
    let mut session = EdaSession::new(dataset, 11).expect("session");
    let mut user = SimulatedUser::new(8, 25, 33);
    let ica = Method::Ica(IcaOpts::default());
    let out = out_dir();
    let mut table = TextTable::new(&["Projection", "ICA scores (|sorted|)"]);

    // Fig. 4a: initial view, prior background.
    let view_a = session.next_view(&ica).expect("view a");
    score_row("Fig 4a,b", &view_a.projection.all_scores, &mut table);
    view_a
        .to_scatter_plot("Fig 4a: initial ICA view of Xhat5", None)
        .save(out.join("fig4a.svg"))
        .expect("svg");
    let clusters = user.perceive_clusters(&view_a);
    println!("view a: {} clusters perceived:", clusters.len());
    for c in &clusters {
        let (cls, j) = best_class_match(c, &abcd.assignments, 4);
        println!(
            "  {} points ≈ {} (Jaccard {j:.3})",
            c.len(),
            abcd.class_names[cls]
        );
        session.add_cluster_constraint(c).expect("constraint");
    }
    session
        .update_background(&FitOpts::default())
        .expect("update");

    // Fig. 4b: same axes, updated background — re-project by hand.
    {
        let mut rng = sider_stats::Rng::seed_from_u64(99);
        let sample = session.background().sample(&mut rng);
        let proj = sider_projection::project(&sample, &view_a.projection.axes);
        let pts_bg: Vec<(f64, f64)> = (0..proj.rows())
            .map(|i| (proj[(i, 0)], proj[(i, 1)]))
            .collect();
        let plot = sider_plot::ScatterPlot::new(
            "Fig 4b: same view, background updated",
            view_a.axis_labels[0].clone(),
            view_a.axis_labels[1].clone(),
        )
        .series(sider_plot::scatter::Series::background(pts_bg))
        .series(sider_plot::scatter::Series::data(view_a.points()));
        plot.save(out.join("fig4b.svg")).expect("svg");
    }

    // Fig. 4c: next most informative view.
    let view_c = session.next_view(&ica).expect("view c");
    score_row("Fig 4c", &view_c.projection.all_scores, &mut table);
    view_c
        .to_scatter_plot("Fig 4c: next most informative ICA view", None)
        .save(out.join("fig4c.svg"))
        .expect("svg");
    let clusters = user.perceive_clusters(&view_c);
    println!("\nview c: {} clusters perceived:", clusters.len());
    for c in &clusters {
        let (cls, j) = best_class_match(c, &efg.assignments, 3);
        println!(
            "  {} points ≈ {} (Jaccard {j:.3})",
            c.len(),
            efg.class_names[cls]
        );
        session.add_cluster_constraint(c).expect("constraint");
    }
    session
        .update_background(&FitOpts::default())
        .expect("update");

    // Fig. 4d: after all constraints.
    let view_d = session.next_view(&ica).expect("view d");
    score_row("Fig 4d", &view_d.projection.all_scores, &mut table);
    view_d
        .to_scatter_plot("Fig 4d: after all cluster constraints", None)
        .save(out.join("fig4d.svg"))
        .expect("svg");

    println!("\nTable I reproduction (paper values in module docs):");
    println!("{}", table.render());
    println!(
        "SVG panels written to {}/fig4{{a,b,c,d}}.svg",
        out.display()
    );
}
