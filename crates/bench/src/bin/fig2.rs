//! Fig. 2 — the 3-D introduction walkthrough (paper §I).
//!
//! Writes the three panels as SVGs and prints cluster-recovery metrics:
//! (a) first informative projection + prior background sample — three
//! clusters visible; (b) same projection after the user's cluster
//! constraints — background matches data; (c) next informative view —
//! the hidden C/D split along X3.

use sider_bench::out_dir;
use sider_core::report::{format_convergence, TextTable};
use sider_core::{EdaSession, SimulatedUser};
use sider_maxent::FitOpts;
use sider_projection::{project, IcaOpts, Method};
use sider_stats::metrics::best_class_match;

fn main() {
    let dataset = sider_data::synthetic::three_d_four_clusters(2018);
    let labels = dataset.primary_labels().expect("labels").clone();
    let mut session = EdaSession::new(dataset, 7).expect("session");
    let mut user = SimulatedUser::new(6, 5, 42);
    let out = out_dir();

    // (a) initial informative PCA view.
    let view_a = session.next_view(&Method::Pca).expect("view a");
    println!(
        "Fig 2a axes:\n  {}\n  {}",
        view_a.axis_labels[0], view_a.axis_labels[1]
    );
    view_a
        .to_scatter_plot("Fig 2a: initial view, prior background", None)
        .save(out.join("fig2a.svg"))
        .expect("svg");
    let clusters = user.perceive_clusters(&view_a);
    let mut t = TextTable::new(&["perceived cluster", "size", "best class", "Jaccard"]);
    for (i, c) in clusters.iter().enumerate() {
        let (cls, j) = best_class_match(c, &labels.assignments, 4);
        t.row(vec![
            format!("{}", i + 1),
            c.len().to_string(),
            labels.class_names[cls].clone(),
            format!("{j:.3}"),
        ]);
        session.add_cluster_constraint(c).expect("constraint");
    }
    println!(
        "\n{} clusters perceived (paper: 3, with C∪D merged):",
        clusters.len()
    );
    println!("{}", t.render());

    let report = session
        .update_background(&FitOpts::default())
        .expect("update");
    println!("background update: {}", format_convergence(&report));

    // (b) same axes, updated background.
    {
        let mut rng = sider_stats::Rng::seed_from_u64(99);
        let sample = session.background().sample(&mut rng);
        let proj = project(&sample, &view_a.projection.axes);
        let pts: Vec<(f64, f64)> = (0..proj.rows())
            .map(|i| (proj[(i, 0)], proj[(i, 1)]))
            .collect();
        sider_plot::ScatterPlot::new(
            "Fig 2b: same view, updated background",
            view_a.axis_labels[0].clone(),
            view_a.axis_labels[1].clone(),
        )
        .series(sider_plot::scatter::Series::background(pts))
        .series(sider_plot::scatter::Series::data(view_a.points()))
        .save(out.join("fig2b.svg"))
        .expect("svg");
    }

    // (c) the next informative view reveals the split.
    let view_c = session
        .next_view(&Method::Ica(IcaOpts::default()))
        .expect("view c");
    println!(
        "\nFig 2c axes (paper: dominated by X3):\n  {}\n  {}",
        view_c.axis_labels[0], view_c.axis_labels[1]
    );
    let clusters_c = user.perceive_clusters(&view_c);
    let mut t = TextTable::new(&["perceived cluster", "size", "best class", "Jaccard"]);
    for (i, c) in clusters_c.iter().enumerate() {
        let (cls, j) = best_class_match(c, &labels.assignments, 4);
        t.row(vec![
            format!("{}", i + 1),
            c.len().to_string(),
            labels.class_names[cls].clone(),
            format!("{j:.3}"),
        ]);
    }
    println!(
        "{} clusters now visible (paper: the third splits into two):",
        clusters_c.len()
    );
    println!("{}", t.render());
    view_c
        .to_scatter_plot("Fig 2c: next informative view — hidden split", None)
        .save(out.join("fig2c.svg"))
        .expect("svg");
    println!("panels written to {}/fig2{{a,b,c}}.svg", out.display());
}
