//! Minimal JSON parsing for benchmark-artifact schema checks.
//!
//! The workspace builds offline (no `serde`), and the only JSON we consume
//! is the handful of `BENCH_*.json` artifacts our own benches emit — so
//! this is a small recursive-descent parser covering exactly RFC 8259,
//! plus the few typed accessors the `check_bench_artifacts` binary needs.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Walk a dotted path of object keys (`"warm_refit.median_ns"`).
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        let mut cur = self;
        for key in dotted.split('.') {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// Require a finite number at a dotted path — the core schema check.
    pub fn require_num(&self, dotted: &str) -> Result<f64, String> {
        let v = self
            .path(dotted)
            .ok_or_else(|| format!("missing key '{dotted}'"))?
            .as_num()
            .ok_or_else(|| format!("key '{dotted}' is not a number"))?;
        if !v.is_finite() {
            return Err(format!("key '{dotted}' is not finite"));
        }
        Ok(v)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape '\\{}'", *other as char)),
                }
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let ch_len = utf8_len(b);
                let chunk = bytes
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = Json::parse(
            r#"{ "a": 1.5, "b": [true, null, "x\n"], "c": { "d": -2e3 }, "e": false }"#,
        )
        .unwrap();
        assert_eq!(doc.require_num("a").unwrap(), 1.5);
        assert_eq!(doc.path("c.d").unwrap().as_num(), Some(-2000.0));
        assert_eq!(doc.get("e").unwrap().as_bool(), Some(false));
        let arr = doc.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a": 1e999999}"#).is_ok()); // inf parses…
        assert!(Json::parse(r#"{"a": 1e999999}"#)
            .unwrap()
            .require_num("a")
            .is_err()); // …but fails the finiteness check
    }

    #[test]
    fn missing_paths_reported() {
        let doc = Json::parse(r#"{"warm": {"ns": 10}}"#).unwrap();
        assert_eq!(doc.require_num("warm.ns").unwrap(), 10.0);
        let err = doc.require_num("cold.ns").unwrap_err();
        assert!(err.contains("cold.ns"));
        let err = Json::parse(r#"{"x": "s"}"#)
            .unwrap()
            .require_num("x")
            .unwrap_err();
        assert!(err.contains("not a number"));
    }

    #[test]
    fn parses_the_pipeline_artifact_shape() {
        let doc = Json::parse(
            "{\n  \"bench\": \"pipeline_cold_vs_warm\",\n  \"samples\": 10,\n  \"cold_fit\": { \"median_ns\": 123, \"sweeps\": 4, \"eigen_recomputed\": 2 },\n  \"warm_refit\": { \"median_ns\": 45, \"sweeps\": 1, \"eigen_recomputed\": 1 },\n  \"speedup\": 2.733\n}\n",
        )
        .unwrap();
        assert_eq!(
            doc.get("bench").unwrap().as_str(),
            Some("pipeline_cold_vs_warm")
        );
        assert!(doc.require_num("cold_fit.median_ns").unwrap() > 0.0);
        assert!(doc.require_num("warm_refit.median_ns").unwrap() > 0.0);
        assert!(doc.require_num("speedup").is_ok());
    }
}
