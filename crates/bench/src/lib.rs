//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` (see DESIGN.md §4 for the index):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig2` | Fig. 2 — 3-D synthetic walkthrough |
//! | `fig3_pairplot` | Fig. 3 — X̂₅ pairplot |
//! | `fig4_table1` | Fig. 4 + Table I — X̂₅ ICA iterations & scores |
//! | `fig5` | Fig. 5 — adversarial convergence curves |
//! | `fig6` | Fig. 6 — whitened X̂₅ pairplots per stage |
//! | `table2` | Table II — OPTIM / ICA runtime grid |
//! | `bnc_use_case` | Figs. 7–8 — BNC exploration (simulated corpus) |
//! | `segmentation_use_case` | Fig. 9 — segmentation exploration |
//!
//! Criterion micro-benchmarks live in `benches/` (OPTIM scaling, ICA,
//! Woodbury-vs-inverse and equivalence-class ablations).

use std::time::{Duration, Instant};

/// True when the benches should run in reduced "smoke" mode (set
/// `SIDER_BENCH_SMOKE=1`): small datasets, few samples, same artifact
/// schema — cheap enough for CI, still exercising every code path.
pub fn smoke_mode() -> bool {
    matches!(
        std::env::var("SIDER_BENCH_SMOKE").as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

/// Time a closure, returning its result and the wall-clock duration.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median of a slice of durations (empty ⇒ zero).
pub fn median_duration(durations: &mut [Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    durations.sort();
    durations[durations.len() / 2]
}

/// Format seconds with one decimal, like the paper's Table II cells.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Minimal command-line flag parser: `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (for tests).
    pub fn from_args(iter: impl IntoIterator<Item = String>) -> Self {
        let mut pairs = Vec::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .inspect(|_| {
                        iter.next();
                    })
                    .unwrap_or_else(|| "true".to_string());
                pairs.push((key.to_string(), value));
            }
        }
        Args { pairs }
    }

    /// Look up a flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parse a typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Boolean flag (present without value, or `--key true`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }
}

/// Output directory for experiment artifacts (`out/` by default,
/// override with `SIDER_OUT`).
pub fn out_dir() -> std::path::PathBuf {
    std::env::var_os("SIDER_OUT")
        .map(Into::into)
        .unwrap_or_else(|| "out".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn median_of_durations() {
        let mut ds = vec![
            Duration::from_millis(30),
            Duration::from_millis(10),
            Duration::from_millis(20),
        ];
        assert_eq!(median_duration(&mut ds), Duration::from_millis(20));
        assert_eq!(median_duration(&mut []), Duration::ZERO);
    }

    #[test]
    fn args_parse_pairs_and_flags() {
        let args = Args::from_args(
            ["--reps", "5", "--quick", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_or("reps", 1usize), 5);
        assert!(args.flag("quick"));
        assert_eq!(args.get("out"), Some("/tmp/x"));
        assert_eq!(args.get_or("missing", 7u32), 7);
    }

    #[test]
    fn fmt_secs_one_decimal() {
        assert_eq!(fmt_secs(Duration::from_millis(1234)), "1.2");
        assert_eq!(fmt_secs(Duration::ZERO), "0.0");
    }
}
