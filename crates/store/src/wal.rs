//! The on-disk record framing of the write-ahead op-log.
//!
//! A WAL file is a flat sequence of records, each framed as
//!
//! ```text
//! ┌─────────────┬─────────────┬───────────────┐
//! │ len: u32 LE │ crc: u32 LE │ payload bytes │
//! └─────────────┴─────────────┴───────────────┘
//! ```
//!
//! where `crc` is the IEEE CRC-32 of the payload. The framing makes the
//! log self-validating under the one failure mode an append-only file has:
//! a **torn tail** — the process (or the machine) died while the last
//! record was being written, leaving a truncated header, a short payload,
//! or a payload whose bytes never all reached the disk. [`scan`] walks the
//! records front to back and stops at the first frame that does not check
//! out, reporting the byte offset of the last fully valid record so the
//! caller can truncate the tear away and continue appending — recovery
//! never fails on a torn tail, it only loses the op that was mid-write
//! (which, by the write-through protocol, was never acknowledged to any
//! client).

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Each record's frame header: payload length + CRC, both `u32` LE.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on one record's payload. The largest legitimate op is an
/// inline-CSV create capped by the HTTP layer at 64 MB; anything bigger in
/// a frame header is corruption, not data, and must not drive a huge
/// allocation while scanning.
pub const MAX_RECORD_BYTES: usize = 80 * 1024 * 1024;

/// IEEE CRC-32 lookup table (polynomial `0xEDB88320`), built at compile
/// time.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frame `payload` into `len | crc | payload` bytes ready to append.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Append one framed record. The frame is written with a single
/// `write_all`, so a crash leaves at most one torn record at the tail.
pub fn append_record(file: &mut File, payload: &[u8]) -> std::io::Result<()> {
    file.write_all(&frame(payload))
}

/// The result of walking a WAL file front to back.
#[derive(Debug)]
pub struct WalScan {
    /// Payloads of every fully valid record, in log order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte offset just past the last valid record — the length the file
    /// should be truncated to when `torn` is set.
    pub valid_len: u64,
    /// Whether trailing bytes after `valid_len` failed validation (short
    /// header, short payload, oversized length, or CRC mismatch).
    pub torn: bool,
}

/// Scan a WAL file, validating each frame. A missing file scans as empty.
/// Corruption anywhere invalidates that record *and everything after it*
/// (the framing is not self-synchronizing — there is no way to trust a
/// record that follows garbage), which collapses every corruption case
/// into the torn-tail case: keep the valid prefix, drop the rest.
pub fn scan(path: &Path) -> std::io::Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return Ok(WalScan {
                payloads,
                valid_len: offset as u64,
                torn: false,
            });
        }
        if rest.len() < FRAME_HEADER_BYTES {
            break; // torn header
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_RECORD_BYTES || rest.len() < FRAME_HEADER_BYTES + len {
            break; // corrupt length or torn payload
        }
        let payload = &rest[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
        if crc32(payload) != crc {
            break; // payload bytes damaged
        }
        payloads.push(payload.to_vec());
        offset += FRAME_HEADER_BYTES + len;
    }
    Ok(WalScan {
        payloads,
        valid_len: offset as u64,
        torn: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sider_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_multiple_records() {
        let path = temp_file("roundtrip.wal");
        let mut file = std::fs::File::create(&path).unwrap();
        for payload in [b"alpha".as_slice(), b"".as_slice(), b"gamma!".as_slice()] {
            append_record(&mut file, payload).unwrap();
        }
        drop(file);
        let scan = scan(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(
            scan.payloads,
            vec![b"alpha".to_vec(), b"".to_vec(), b"gamma!".to_vec()]
        );
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_scans_empty() {
        let scan = scan(Path::new("/nonexistent/sider.wal")).unwrap();
        assert!(scan.payloads.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(!scan.torn);
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let path = temp_file("torn.wal");
        let mut file = std::fs::File::create(&path).unwrap();
        append_record(&mut file, b"complete-record").unwrap();
        let good_len = file.metadata().unwrap().len();
        // A record whose payload was cut short by the crash.
        let torn = frame(b"never-finished-writing");
        file.write_all(&torn[..torn.len() - 5]).unwrap();
        drop(file);
        let scan = scan(&path).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.payloads, vec![b"complete-record".to_vec()]);
        assert_eq!(scan.valid_len, good_len);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn damaged_payload_invalidates_tail() {
        let path = temp_file("damaged.wal");
        let mut file = std::fs::File::create(&path).unwrap();
        append_record(&mut file, b"first").unwrap();
        let good_len = file.metadata().unwrap().len();
        append_record(&mut file, b"second").unwrap();
        append_record(&mut file, b"third").unwrap();
        drop(file);
        // Flip one payload byte of "second": it and "third" are dropped —
        // nothing after damage can be trusted.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = good_len as usize + FRAME_HEADER_BYTES;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan(&path).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.payloads, vec![b"first".to_vec()]);
        assert_eq!(scan.valid_len, good_len);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn absurd_length_header_is_torn_not_oom() {
        let path = temp_file("absurd.wal");
        let mut file = std::fs::File::create(&path).unwrap();
        append_record(&mut file, b"ok").unwrap();
        let good_len = file.metadata().unwrap().len();
        file.write_all(&u32::MAX.to_le_bytes()).unwrap();
        file.write_all(&[0u8; 100]).unwrap();
        drop(file);
        let scan = scan(&path).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.valid_len, good_len);
        let _ = std::fs::remove_file(&path);
    }
}
