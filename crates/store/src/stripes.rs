//! Striped store layout: one independent [`Store`] per stripe.
//!
//! A sharded `sider_server` routes every session to one of `N` stripes by
//! a **stable hash of the session ID** — the same pure function at every
//! stripe count query, on every restart, in every process — so a
//! session's on-disk history always lives in the same stripe directory
//! and recovery can replay each stripe independently (with that stripe's
//! own thread pool), never taking a cross-stripe lock.
//!
//! On-disk layout under the data dir:
//!
//! ```text
//! <data-dir>/
//! ├── layout.json            # {"format":"sider-store-striped","stripes":N}
//! ├── stripe-0/              # a full per-stripe store (lib.rs layout)
//! │   ├── meta.json
//! │   └── sessions/s3/…
//! ├── stripe-1/
//! │   └── …
//! └── …
//! ```
//!
//! `layout.json` pins the stripe count the directory was written with:
//! opening it with a different `--stripes` is a hard error (moving
//! session histories between stripes is a migration, not something a
//! server bind should do silently). A **legacy** unstriped data dir
//! (PR 5's `meta.json` + `sessions/` at the root) is migrated in place on
//! first striped open: each session directory is renamed into the stripe
//! its ID hashes to — a pure rename, no history bytes are rewritten.
//!
//! The stripe hash is FNV-1a over the ID's little-endian bytes. It is
//! part of the on-disk format: changing it would orphan every stored
//! session, which is why `tests` pin exact values.

use crate::{Store, StoreConfig, StoreError};
use sider_json::Json;
use std::path::{Path, PathBuf};

/// Environment variable selecting the server stripe count.
pub const STRIPES_ENV_VAR: &str = "SIDER_STRIPES";

/// Hard upper bound on the stripe count (a fat-finger guard: each stripe
/// owns a thread pool and a store directory).
pub const MAX_STRIPES: usize = 256;

const LAYOUT_FILE: &str = "layout.json";
const LAYOUT_FORMAT: &str = "sider-store-striped";

/// The stripe a session ID belongs to: FNV-1a 64 over the ID's 8
/// little-endian bytes, reduced mod `stripes`.
///
/// This is a **pure function of the ID** (no state, no randomness): the
/// same ID maps to the same stripe in every process and across restarts,
/// which is what lets each stripe recover its own directory without
/// consulting the others.
pub fn stripe_of(id: u64, stripes: usize) -> usize {
    debug_assert!(stripes >= 1);
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for byte in id.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % stripes as u64) as usize
}

/// Directory name of stripe `k` under the data dir (`stripe-3`).
pub fn stripe_dir_name(k: usize) -> String {
    format!("stripe-{k}")
}

/// The stripe count a data dir was written with, per its `layout.json`
/// (`None` when the file is absent — a fresh or legacy dir).
pub fn detect_stripes(dir: &Path) -> Result<Option<usize>, StoreError> {
    let path = dir.join(LAYOUT_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let json =
        Json::parse(&text).map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
    if json.get("format").and_then(Json::as_str) != Some(LAYOUT_FORMAT) {
        return Err(StoreError::Corrupt(format!(
            "{}: not a '{LAYOUT_FORMAT}' layout",
            path.display()
        )));
    }
    let n = json
        .require_num("stripes")
        .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
    if !(n.is_finite() && n >= 1.0 && n <= MAX_STRIPES as f64 && n.fract() == 0.0) {
        return Err(StoreError::Corrupt(format!(
            "{}: bad stripe count {n}",
            path.display()
        )));
    }
    Ok(Some(n as usize))
}

/// Whether `dir` holds a legacy (PR 5) unstriped store: `meta.json` or a
/// `sessions/` directory at the root instead of `stripe-{k}/` subdirs.
fn is_legacy_layout(dir: &Path) -> bool {
    dir.join("meta.json").exists() || dir.join("sessions").is_dir()
}

/// Migrate a legacy unstriped store in place: rename each `sessions/s{n}`
/// into `stripe-{stripe_of(n)}/sessions/s{n}` and move the root
/// `meta.json` (the persisted ID counter) into stripe 0. Renames only —
/// no WAL or checkpoint bytes are rewritten, so recovery replays exactly
/// the histories the legacy server wrote.
fn migrate_legacy(dir: &Path, stripes: usize) -> Result<(), StoreError> {
    let legacy_sessions = dir.join("sessions");
    if legacy_sessions.is_dir() {
        for entry in std::fs::read_dir(&legacy_sessions)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix('s'))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                return Err(StoreError::Corrupt(format!(
                    "{}: unexpected entry {:?} in legacy sessions dir",
                    dir.display(),
                    name
                )));
            };
            let target_dir = dir
                .join(stripe_dir_name(stripe_of(id, stripes)))
                .join("sessions");
            std::fs::create_dir_all(&target_dir)?;
            std::fs::rename(entry.path(), target_dir.join(&name))?;
        }
        std::fs::remove_dir(&legacy_sessions)?;
    }
    let legacy_meta = dir.join("meta.json");
    if legacy_meta.exists() {
        let stripe0 = dir.join(stripe_dir_name(0));
        std::fs::create_dir_all(&stripe0)?;
        std::fs::rename(&legacy_meta, stripe0.join("meta.json"))?;
    }
    Ok(())
}

/// Open (creating or migrating as needed) the striped layout under
/// `config.dir` and return one [`Store`] per stripe, index-aligned with
/// [`stripe_of`]. Every stripe inherits `config`'s fsync and checkpoint
/// settings. A `layout.json` recording a *different* stripe count is a
/// hard error: session histories would be searched for in the wrong
/// stripe directories.
pub fn open_striped(config: &StoreConfig, stripes: usize) -> Result<Vec<Store>, StoreError> {
    if stripes == 0 || stripes > MAX_STRIPES {
        return Err(StoreError::Corrupt(format!(
            "stripe count {stripes} out of range 1..={MAX_STRIPES}"
        )));
    }
    std::fs::create_dir_all(&config.dir)?;
    match detect_stripes(&config.dir)? {
        Some(on_disk) if on_disk != stripes => {
            return Err(StoreError::Corrupt(format!(
                "{}: laid out with {on_disk} stripes, server configured for {stripes} \
                 (changing the stripe count requires migrating session histories)",
                config.dir.display()
            )));
        }
        Some(_) => {}
        None => {
            if is_legacy_layout(&config.dir) {
                migrate_legacy(&config.dir, stripes)?;
            }
            let doc = Json::obj([
                ("format", Json::from(LAYOUT_FORMAT)),
                ("stripes", Json::from(stripes)),
                ("version", Json::from(1.0)),
            ]);
            crate::write_atomic(
                &config.dir.join(LAYOUT_FILE),
                format!("{}\n", doc.dump()).as_bytes(),
            )?;
        }
    }
    (0..stripes)
        .map(|k| {
            let mut stripe_config = config.clone();
            stripe_config.dir = stripe_path(&config.dir, k);
            Store::open(stripe_config)
        })
        .collect()
}

/// Path of stripe `k`'s store under the data dir.
pub fn stripe_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(stripe_dir_name(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FsyncPolicy;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sider_stripes_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> StoreConfig {
        let mut c = StoreConfig::new(dir);
        c.fsync = FsyncPolicy::Never;
        c
    }

    #[test]
    fn stripe_of_is_pinned_to_the_on_disk_format() {
        // These exact values are part of the on-disk format: a session
        // stored under stripe-{stripe_of(id)} must hash to the same
        // stripe after any refactor, or recovery would lose it.
        for (id, stripes, expected) in [
            (1u64, 4usize, 0usize),
            (2, 4, 3),
            (3, 4, 2),
            (4, 4, 1),
            (5, 4, 0),
            (6, 4, 3),
            (1, 2, 0),
            (2, 2, 1),
            (7, 8, 2),
            (1000, 16, 12),
        ] {
            assert_eq!(
                stripe_of(id, stripes),
                expected,
                "id={id} stripes={stripes}"
            );
        }
        // One stripe: everything maps to it.
        for id in 0..100 {
            assert_eq!(stripe_of(id, 1), 0);
        }
    }

    #[test]
    fn stripe_of_is_a_pure_total_function() {
        for stripes in [1usize, 2, 3, 4, 7, 8, 16] {
            let mut seen = vec![0usize; stripes];
            for id in 0..10_000u64 {
                let s = stripe_of(id, stripes);
                assert!(s < stripes);
                assert_eq!(s, stripe_of(id, stripes), "must be deterministic");
                seen[s] += 1;
            }
            // Sanity: dense IDs spread over every stripe (no starved
            // stripe under the workload's dense s1..sN assignment).
            for (k, count) in seen.iter().enumerate() {
                assert!(
                    *count > 10_000 / stripes / 4,
                    "stripe {k}/{stripes} starved: {count}"
                );
            }
        }
    }

    #[test]
    fn open_striped_creates_layout_and_stores() {
        let dir = temp_dir("create");
        let stores = open_striped(&config(&dir), 4).unwrap();
        assert_eq!(stores.len(), 4);
        assert_eq!(detect_stripes(&dir).unwrap(), Some(4));
        for k in 0..4 {
            assert!(dir.join(stripe_dir_name(k)).join("sessions").is_dir());
        }
        // Re-opening with the same count succeeds…
        assert!(open_striped(&config(&dir), 4).is_ok());
        // …with a different count fails loudly.
        assert!(matches!(
            open_striped(&config(&dir), 2),
            Err(StoreError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stripe_count_bounds_are_enforced() {
        let dir = temp_dir("bounds");
        assert!(matches!(
            open_striped(&config(&dir), 0),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(
            open_striped(&config(&dir), MAX_STRIPES + 1),
            Err(StoreError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_layout_is_an_error() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LAYOUT_FILE), b"{not json").unwrap();
        assert!(matches!(
            open_striped(&config(&dir), 2),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::write(
            dir.join(LAYOUT_FILE),
            br#"{"format":"sider-store-striped","stripes":0.5}"#,
        )
        .unwrap();
        assert!(matches!(detect_stripes(&dir), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_store_is_migrated_in_place() {
        let dir = temp_dir("legacy");
        // Build a PR-5 style unstriped store with two sessions.
        {
            let store = Store::open(config(&dir)).unwrap();
            let body = Json::parse(r#"{"dataset":"fig2","seed":7}"#).unwrap();
            store.create_session(1, &body).unwrap();
            store.create_session(2, &body).unwrap();
        }
        assert!(dir.join("meta.json").exists());
        let stores = open_striped(&config(&dir), 4).unwrap();
        // Sessions moved to their hash-assigned stripes, histories intact.
        assert!(!dir.join("sessions").exists());
        assert!(!dir.join("meta.json").exists());
        for id in [1u64, 2] {
            let k = stripe_of(id, 4);
            assert!(
                dir.join(stripe_dir_name(k))
                    .join(format!("sessions/s{id}"))
                    .join("wal.log")
                    .exists(),
                "s{id} must live in stripe-{k}"
            );
        }
        // The persisted ID counter survives in stripe 0.
        assert_eq!(stores[0].next_session_id().unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
