//! WAL shipping: the durable per-stripe op stream a leader replicates to
//! followers, plus the length-prefixed wire framing the replication edge
//! speaks over TCP.
//!
//! Every mutating op a [`Store`](crate::Store) acknowledges is also
//! appended — in commit order — to a per-stripe `ship.log`, framed
//! exactly like the WAL (`len | crc32 | payload`, [`wal`] module). Each
//! record carries a **per-stripe monotone sequence number** (`seq`)
//! alongside the session-local `(session, lsn, op, body)` it mirrors, so
//! a follower can resume from a single integer cursor per stripe.
//!
//! ```text
//! <stripe-dir>/
//! ├── ship.log      # leader: framed ShipRecord stream (this module)
//! └── cursor.json   # follower: {"applied_seq":N}, the resume cursor
//! <data-dir>/replica.json  # follower role marker: {"leader":addr}
//! ```
//!
//! The ship log is a **derived** log: it is never fsynced, because
//! [`Store::recover_all`](crate::Store::recover_all) reconciles it
//! against the authoritative WALs and checkpoints at open — a torn or
//! missing tail is rebuilt, a session compacted below the shipped
//! horizon is re-shipped as a `checkpoint` bootstrap record, a session
//! deleted while shipping was down is shipped as a `remove`. That makes
//! crash-safety free and lets pre-replication data dirs start shipping
//! retroactively.
//!
//! Wire messages reuse the same frame; the payload is one JSON object
//! dispatched on `"type"`: `hello` (follower → leader: layout + per-
//! stripe cursors), `welcome`/`error` (leader's handshake verdict),
//! `record` (a [`ShipRecord`] tagged with its stripe), `heartbeat`
//! (leader's latest seqs while idle, which doubles as the follower's
//! liveness deadline), and `ack` (follower → leader: applied seq, the
//! leader's lag signal). A frame that fails CRC or length validation is
//! a **torn frame**: the receiver drops the connection and re-requests
//! from its last durable cursor — at-least-once delivery that the
//! idempotent replay on the follower collapses to exactly-once.

use crate::{wal, write_atomic, StoreError};
use sider_json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Handshake format tag (the `hello` frame's `format` field).
pub const SHIP_FORMAT: &str = "sider-ship";

/// Wire protocol version pinned by the handshake.
pub const SHIP_VERSION: f64 = 1.0;

/// File name of the per-stripe ship log inside a store directory.
pub const SHIP_LOG_FILE: &str = "ship.log";

/// File name of the follower's persisted resume cursor.
pub const CURSOR_FILE: &str = "cursor.json";

/// File name of the follower role marker at the data-dir root.
pub const MARKER_FILE: &str = "replica.json";

/// Default leader heartbeat interval (announced in `welcome`).
pub const DEFAULT_HEARTBEAT_MS: u64 = 1000;

/// A follower persists its cursor every this many applied records (and
/// on every disconnect); anything newer is recovered by idempotent
/// re-delivery.
pub const CURSOR_FLUSH_EVERY: u64 = 16;

/// Per-stripe cap on the in-memory ship buffer. Records evicted here are
/// still served — the leader degrades to tailing `ship.log` from disk.
pub const SHIP_BUFFER_MAX_BYTES: usize = 2 * 1024 * 1024;

/// Reconnect backoff base (first retry) — see [`backoff`].
pub const BACKOFF_BASE_MS: u64 = 50;

/// Reconnect backoff ceiling — see [`backoff`].
pub const BACKOFF_CAP_MS: u64 = 2000;

/// Why a ship-protocol read failed.
#[derive(Debug)]
pub enum ShipError {
    /// Socket/file failure (including read-deadline timeouts).
    Io(std::io::Error),
    /// A frame failed validation: short header, oversized length, short
    /// payload, or CRC mismatch. The stream cannot be trusted past this
    /// point — drop the connection and resume from the durable cursor.
    Torn(String),
    /// A structurally valid frame carried a payload the protocol does
    /// not understand.
    Protocol(String),
}

impl std::fmt::Display for ShipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShipError::Io(e) => write!(f, "ship i/o: {e}"),
            ShipError::Torn(m) => write!(f, "ship torn frame: {m}"),
            ShipError::Protocol(m) => write!(f, "ship protocol: {m}"),
        }
    }
}

impl From<std::io::Error> for ShipError {
    fn from(e: std::io::Error) -> Self {
        ShipError::Io(e)
    }
}

/// One shipped op: the WAL record plus its per-stripe sequence number.
///
/// `op` is a WAL [`OpKind`](crate::ops::OpKind) string for mirrored ops,
/// or one of the two ship-only kinds: `"remove"` (session deleted; `lsn`
/// 0, `body` null) and `"checkpoint"` (bootstrap: `body` is the full
/// checkpoint document, `lsn` its `last_lsn` — shipped when the leader
/// compacted history below the follower's horizon).
#[derive(Debug, Clone, PartialEq)]
pub struct ShipRecord {
    /// Per-stripe monotone sequence number (1-based).
    pub seq: u64,
    /// Numeric session ID the op belongs to.
    pub session: u64,
    /// Session-local LSN of the mirrored op (0 for `remove`).
    pub lsn: u64,
    /// Op kind string (`create`/`knowledge`/… or `remove`/`checkpoint`).
    pub op: String,
    /// The op body exactly as logged.
    pub body: Json,
}

impl ShipRecord {
    /// Serialize to the `ship.log` payload text. Assembled textually
    /// (keys in `sider_json`'s sorted order) like the WAL hot path, so
    /// shipping never deep-clones a large create body.
    pub fn to_payload(&self) -> String {
        let body_text = self.body.dump();
        let mut payload = String::with_capacity(body_text.len() + 80);
        payload.push_str("{\"body\":");
        payload.push_str(&body_text);
        payload.push_str(",\"lsn\":");
        payload.push_str(&self.lsn.to_string());
        payload.push_str(",\"op\":\"");
        payload.push_str(&self.op);
        payload.push_str("\",\"seq\":");
        payload.push_str(&self.seq.to_string());
        payload.push_str(",\"session\":");
        payload.push_str(&self.session.to_string());
        payload.push('}');
        payload
    }

    /// Parse a `ship.log` payload (or a wire `record` frame, which is a
    /// superset) back into a record.
    pub fn from_payload(payload: &str) -> Result<ShipRecord, String> {
        let json = Json::parse(payload).map_err(|e| format!("ship record: {e}"))?;
        ShipRecord::from_json(&json)
    }

    /// Parse from an already-parsed JSON object.
    pub fn from_json(json: &Json) -> Result<ShipRecord, String> {
        let num = |key: &str| {
            json.require_num(key)
                .map_err(|e| format!("ship record: {e}"))
                .and_then(|n| {
                    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 {
                        Ok(n as u64)
                    } else {
                        Err(format!("ship record: bad {key} {n}"))
                    }
                })
        };
        Ok(ShipRecord {
            seq: num("seq")?,
            session: num("session")?,
            lsn: num("lsn")?,
            op: json
                .require_str("op")
                .map_err(|e| format!("ship record: {e}"))?
                .to_string(),
            body: json.get("body").cloned().unwrap_or(Json::Null),
        })
    }

    /// The wire `record` frame payload: the file payload extended with
    /// `stripe` and `type` (which sort after the file keys, so this is a
    /// cheap textual splice, byte-identical to a full re-serialization).
    pub fn to_wire(&self, stripe: usize) -> String {
        let mut text = self.to_payload();
        text.pop();
        text.push_str(",\"stripe\":");
        text.push_str(&stripe.to_string());
        text.push_str(",\"type\":\"record\"}");
        text
    }
}

/// Write one framed wire message (`len | crc | payload`) and flush.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    w.write_all(&wal::frame(payload.as_bytes()))?;
    w.flush()
}

/// Read one framed wire message, validating length and CRC. An invalid
/// frame is [`ShipError::Torn`] — the caller must drop the connection.
pub fn read_frame(r: &mut impl Read) -> Result<Json, ShipError> {
    let mut header = [0u8; wal::FRAME_HEADER_BYTES];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > wal::MAX_RECORD_BYTES {
        return Err(ShipError::Torn(format!("oversized frame ({len} bytes)")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if wal::crc32(&payload) != crc {
        return Err(ShipError::Torn("frame crc mismatch".into()));
    }
    let text = std::str::from_utf8(&payload)
        .map_err(|_| ShipError::Protocol("frame payload is not utf-8".into()))?;
    Json::parse(text).map_err(|e| ShipError::Protocol(format!("frame payload: {e}")))
}

/// Build the follower's `hello` handshake frame.
pub fn hello(stripes: usize, cursors: &[u64]) -> String {
    Json::obj([
        (
            "cursors",
            Json::Arr(cursors.iter().map(|&c| Json::from(c)).collect()),
        ),
        ("format", Json::from(SHIP_FORMAT)),
        ("stripes", Json::from(stripes)),
        ("type", Json::from("hello")),
        ("version", Json::from(SHIP_VERSION)),
    ])
    .dump()
}

/// Build the leader's `welcome` handshake frame.
pub fn welcome(stripes: usize, heartbeat_ms: u64, seqs: &[u64]) -> String {
    Json::obj([
        ("heartbeat_ms", Json::from(heartbeat_ms)),
        (
            "seqs",
            Json::Arr(seqs.iter().map(|&s| Json::from(s)).collect()),
        ),
        ("stripes", Json::from(stripes)),
        ("type", Json::from("welcome")),
    ])
    .dump()
}

/// Build the leader's handshake-rejection frame.
pub fn error_frame(message: &str) -> String {
    Json::obj([
        ("error", Json::from(message)),
        ("type", Json::from("error")),
    ])
    .dump()
}

/// Build an idle-link `heartbeat` frame carrying the leader's seqs.
pub fn heartbeat(seqs: &[u64]) -> String {
    Json::obj([
        (
            "seqs",
            Json::Arr(seqs.iter().map(|&s| Json::from(s)).collect()),
        ),
        ("type", Json::from("heartbeat")),
    ])
    .dump()
}

/// Build the follower's `ack` frame for an applied record.
pub fn ack(stripe: usize, seq: u64) -> String {
    Json::obj([
        ("seq", Json::from(seq)),
        ("stripe", Json::from(stripe)),
        ("type", Json::from("ack")),
    ])
    .dump()
}

/// Extract a `seqs` array (one entry per stripe) from a wire message.
pub fn parse_seqs(msg: &Json, stripes: usize) -> Result<Vec<u64>, String> {
    let arr = msg.require_arr("seqs").map_err(|e| e.to_string())?;
    if arr.len() != stripes {
        return Err(format!("expected {stripes} seqs, got {}", arr.len()));
    }
    arr.iter()
        .map(|v| {
            v.as_num()
                .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| "bad seq entry".to_string())
        })
        .collect()
}

/// The open per-stripe ship log: append handle plus the next sequence
/// number. Lives inside [`Store`](crate::Store) behind a mutex; appends
/// are serialized with the per-record buffer push so followers observe
/// commit order.
#[derive(Debug)]
pub struct ShipLog {
    file: File,
    next_seq: u64,
}

impl ShipLog {
    /// Path of the ship log inside a store directory.
    pub fn log_path(dir: &Path) -> PathBuf {
        dir.join(SHIP_LOG_FILE)
    }

    /// Open (creating if absent) the ship log of `dir`, truncating any
    /// torn tail — safe because the log is derived and reconciliation
    /// rebuilds whatever the tear dropped.
    pub fn open(dir: &Path) -> Result<ShipLog, StoreError> {
        let path = Self::log_path(dir);
        let scan = wal::scan(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if scan.torn {
            file.set_len(scan.valid_len)?;
        }
        let mut next_seq = 1;
        for payload in &scan.payloads {
            let text = std::str::from_utf8(payload)
                .map_err(|_| StoreError::Corrupt(format!("{}: non-utf8 record", path.display())))?;
            let rec = ShipRecord::from_payload(text)
                .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
            next_seq = next_seq.max(rec.seq + 1);
        }
        Ok(ShipLog { file, next_seq })
    }

    /// Sequence number of the last appended record (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Append one record, assigning the next sequence number. Returns
    /// the record's payload text (for the in-memory buffer) and seq.
    pub fn append(
        &mut self,
        session: u64,
        op: &str,
        lsn: u64,
        body: &Json,
    ) -> Result<(u64, String), StoreError> {
        let seq = self.next_seq;
        let payload = ShipRecord {
            seq,
            session,
            lsn,
            op: op.to_string(),
            body: Json::Null,
        }
        .to_payload();
        // Splice the borrowed body in rather than cloning it into the
        // record: replace the placeholder "null" after `{"body":`.
        let body_text = body.dump();
        let mut text = String::with_capacity(payload.len() + body_text.len());
        text.push_str("{\"body\":");
        text.push_str(&body_text);
        text.push_str(&payload["{\"body\":null".len()..]);
        wal::append_record(&mut self.file, text.as_bytes())?;
        self.next_seq += 1;
        Ok((seq, text))
    }
}

/// Per-session shipped horizon recovered by scanning a ship log:
/// `Some(lsn)` = shipped up to that LSN, `None` = last shipped event was
/// a `remove`.
pub type ShipState = BTreeMap<u64, Option<u64>>;

/// Scan a ship log for the per-session shipped horizon (reconciliation
/// input). A missing file scans empty; a torn tail keeps the valid
/// prefix.
pub fn scan_state(dir: &Path) -> Result<ShipState, StoreError> {
    let path = ShipLog::log_path(dir);
    let scan = wal::scan(&path)?;
    let mut state = ShipState::new();
    for payload in &scan.payloads {
        let text = std::str::from_utf8(payload)
            .map_err(|_| StoreError::Corrupt(format!("{}: non-utf8 record", path.display())))?;
        let rec = ShipRecord::from_payload(text)
            .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
        if rec.op == "remove" {
            state.insert(rec.session, None);
        } else {
            let prior = state.get(&rec.session).copied().flatten().unwrap_or(0);
            state.insert(rec.session, Some(prior.max(rec.lsn)));
        }
    }
    Ok(state)
}

/// Read ship records with `seq >= from` straight from disk — the
/// degradation path when a follower's cursor has fallen off the
/// in-memory buffer. Linear in the log size, bounded by `limit` results.
pub fn read_records(dir: &Path, from: u64, limit: usize) -> Result<Vec<ShipRecord>, StoreError> {
    let path = ShipLog::log_path(dir);
    let scan = wal::scan(&path)?;
    let mut out = Vec::new();
    for payload in &scan.payloads {
        if out.len() >= limit {
            break;
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| StoreError::Corrupt(format!("{}: non-utf8 record", path.display())))?;
        let rec = ShipRecord::from_payload(text)
            .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
        if rec.seq >= from {
            out.push(rec);
        }
    }
    Ok(out)
}

/// Bounded in-memory tail of the ship log, so a keeping-up follower is
/// served without touching the disk. Evicts oldest-first past
/// [`SHIP_BUFFER_MAX_BYTES`]; a reader that asks for an evicted seq gets
/// `None` and falls back to [`read_records`].
#[derive(Debug)]
pub struct ShipBuffer {
    inner: Mutex<BufferInner>,
    max_bytes: usize,
}

#[derive(Debug)]
struct BufferInner {
    ring: VecDeque<(u64, String)>,
    bytes: usize,
    last_seq: u64,
}

impl ShipBuffer {
    /// An empty buffer whose "already caught up" horizon starts at
    /// `last_seq` (the seq the on-disk log ends at when opened).
    pub fn new(max_bytes: usize, last_seq: u64) -> ShipBuffer {
        ShipBuffer {
            inner: Mutex::new(BufferInner {
                ring: VecDeque::new(),
                bytes: 0,
                last_seq,
            }),
            max_bytes,
        }
    }

    /// Append one record's payload (callers pass consecutive seqs).
    pub fn push(&self, seq: u64, payload: String) {
        let mut inner = self.inner.lock().expect("ship buffer lock");
        inner.bytes += payload.len();
        inner.ring.push_back((seq, payload));
        inner.last_seq = seq;
        while inner.bytes > self.max_bytes && inner.ring.len() > 1 {
            if let Some((_, dropped)) = inner.ring.pop_front() {
                inner.bytes -= dropped.len();
            }
        }
    }

    /// Payload texts of up to `limit` records with `seq >= from`.
    /// `Some(vec![])` means "caught up, nothing new"; `None` means the
    /// requested seq was evicted — degrade to the on-disk log.
    pub fn collect_from(&self, from: u64, limit: usize) -> Option<Vec<String>> {
        let inner = self.inner.lock().expect("ship buffer lock");
        if from > inner.last_seq {
            return Some(Vec::new());
        }
        match inner.ring.front() {
            Some(&(front, _)) if from >= front => Some(
                inner
                    .ring
                    .iter()
                    .filter(|(seq, _)| *seq >= from)
                    .take(limit)
                    .map(|(_, p)| p.clone())
                    .collect(),
            ),
            _ => None,
        }
    }
}

/// Read a follower's persisted resume cursor (0 when absent/invalid).
pub fn read_cursor(dir: &Path) -> u64 {
    let path = dir.join(CURSOR_FILE);
    std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| json.get("applied_seq").and_then(Json::as_num))
        .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
        .map(|n| n as u64)
        .unwrap_or(0)
}

/// Durably persist a follower's resume cursor (atomic replace).
pub fn write_cursor(dir: &Path, applied_seq: u64) -> std::io::Result<()> {
    let doc = Json::obj([("applied_seq", Json::from(applied_seq))]);
    write_atomic(
        &dir.join(CURSOR_FILE),
        format!("{}\n", doc.dump()).as_bytes(),
    )
}

/// Path of the follower role marker for a data-dir root.
pub fn marker_path(root: &Path) -> PathBuf {
    root.join(MARKER_FILE)
}

/// Write the follower role marker: this data dir replays `leader` and
/// must not be served as a leader without `--promote`.
pub fn write_marker(root: &Path, leader: &str) -> std::io::Result<()> {
    let doc = Json::obj([
        ("format", Json::from("sider-replica")),
        ("leader", Json::from(leader)),
    ]);
    write_atomic(&marker_path(root), format!("{}\n", doc.dump()).as_bytes())
}

/// Read the follower role marker, returning the leader address.
pub fn read_marker(root: &Path) -> Option<String> {
    let text = std::fs::read_to_string(marker_path(root)).ok()?;
    let json = Json::parse(&text).ok()?;
    json.get("leader")
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// Capped exponential reconnect backoff with deterministic jitter: the
/// delay for `attempt` (0-based) doubles from [`BACKOFF_BASE_MS`] up to
/// [`BACKOFF_CAP_MS`], plus a jitter in `[0, BACKOFF_BASE_MS)` that is a
/// pure function of `(seed, attempt)` — reproducible under test, yet
/// de-synchronized across followers with different seeds.
pub fn backoff(attempt: u32, seed: u64) -> Duration {
    let exp = BACKOFF_BASE_MS << attempt.min(6);
    let capped = exp.min(BACKOFF_CAP_MS);
    // SplitMix64-style finalizer over (seed, attempt).
    let mut h = seed ^ (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    Duration::from_millis(capped + h % BACKOFF_BASE_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sider_ship_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_payload_roundtrips_and_matches_full_serialization() {
        let rec = ShipRecord {
            seq: 42,
            session: 7,
            lsn: 3,
            op: "knowledge".into(),
            body: Json::parse(r#"{"kind":"cluster","rows":[1,2,3]}"#).unwrap(),
        };
        let payload = rec.to_payload();
        // The textual assembly must match sorted-key JSON serialization.
        assert_eq!(payload, Json::parse(&payload).unwrap().dump());
        assert_eq!(ShipRecord::from_payload(&payload).unwrap(), rec);
        let wire = rec.to_wire(3);
        let msg = Json::parse(&wire).unwrap();
        assert_eq!(wire, msg.dump());
        assert_eq!(msg.require_str("type").unwrap(), "record");
        assert_eq!(msg.require_num("stripe").unwrap(), 3.0);
        assert_eq!(ShipRecord::from_json(&msg).unwrap(), rec);
    }

    #[test]
    fn frames_roundtrip_and_torn_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &hello(4, &[1, 2, 3, 4])).unwrap();
        write_frame(&mut buf, &heartbeat(&[9, 9, 9, 9])).unwrap();
        let mut r = &buf[..];
        let msg = read_frame(&mut r).unwrap();
        assert_eq!(msg.require_str("type").unwrap(), "hello");
        assert_eq!(
            parse_seqs(&Json::parse(&heartbeat(&[5, 6])).unwrap(), 2).unwrap(),
            [5, 6]
        );
        let msg = read_frame(&mut r).unwrap();
        assert_eq!(msg.require_str("type").unwrap(), "heartbeat");

        // A flipped payload byte is a torn frame, not a parse error.
        let mut damaged = Vec::new();
        write_frame(&mut damaged, &ack(0, 1)).unwrap();
        damaged[wal::FRAME_HEADER_BYTES] ^= 0x20;
        assert!(matches!(
            read_frame(&mut &damaged[..]),
            Err(ShipError::Torn(_))
        ));
        // A frame cut mid-payload (killed mid-record) is an Io error —
        // the reconnect path, not a protocol failure.
        let mut cut = Vec::new();
        write_frame(&mut cut, &ack(0, 2)).unwrap();
        cut.truncate(cut.len() - 3);
        assert!(matches!(read_frame(&mut &cut[..]), Err(ShipError::Io(_))));
    }

    #[test]
    fn ship_log_appends_resume_across_reopen_and_truncate_torn_tails() {
        let dir = temp_dir("log");
        let mut log = ShipLog::open(&dir).unwrap();
        assert_eq!(log.last_seq(), 0);
        let body = Json::parse(r#"{"dataset":"fig2"}"#).unwrap();
        let (seq, text) = log.append(1, "create", 1, &body).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(ShipRecord::from_payload(&text).unwrap().op, "create");
        log.append(1, "update", 2, &Json::parse("{}").unwrap())
            .unwrap();
        drop(log);

        // Torn tail: half a record appended by a crash.
        let torn = wal::frame(b"never-finished");
        let mut bytes = std::fs::read(ShipLog::log_path(&dir)).unwrap();
        let good_len = bytes.len() as u64;
        bytes.extend_from_slice(&torn[..torn.len() - 4]);
        std::fs::write(ShipLog::log_path(&dir), &bytes).unwrap();

        let log = ShipLog::open(&dir).unwrap();
        assert_eq!(log.last_seq(), 2);
        assert_eq!(
            std::fs::metadata(ShipLog::log_path(&dir)).unwrap().len(),
            good_len
        );
        let recs = read_records(&dir, 2, 16).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, 2);
        assert_eq!(recs[0].op, "update");
        let state = scan_state(&dir).unwrap();
        assert_eq!(state.get(&1), Some(&Some(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_state_tracks_removes() {
        let dir = temp_dir("state");
        let mut log = ShipLog::open(&dir).unwrap();
        let body = Json::parse("{}").unwrap();
        log.append(3, "create", 1, &body).unwrap();
        log.append(3, "view", 2, &body).unwrap();
        log.append(3, "remove", 0, &Json::Null).unwrap();
        log.append(5, "create", 1, &body).unwrap();
        let state = scan_state(&dir).unwrap();
        assert_eq!(state.get(&3), Some(&None));
        assert_eq!(state.get(&5), Some(&Some(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn buffer_serves_tail_and_signals_eviction() {
        let buf = ShipBuffer::new(64, 10);
        // Caught up: nothing new past the on-disk horizon.
        assert_eq!(buf.collect_from(11, 8), Some(Vec::new()));
        // Asking below the horizon with an empty ring = evicted.
        assert_eq!(buf.collect_from(5, 8), None);
        buf.push(11, "a".repeat(30));
        buf.push(12, "b".repeat(30));
        assert_eq!(buf.collect_from(11, 8).unwrap().len(), 2);
        // Over budget: seq 11 is evicted, 13 retained.
        buf.push(13, "c".repeat(30));
        assert_eq!(buf.collect_from(11, 8), None);
        let tail = buf.collect_from(13, 8).unwrap();
        assert_eq!(tail.len(), 1);
        assert!(tail[0].starts_with("ccc"));
    }

    #[test]
    fn cursor_and_marker_roundtrip() {
        let dir = temp_dir("cursor");
        assert_eq!(read_cursor(&dir), 0);
        write_cursor(&dir, 99).unwrap();
        assert_eq!(read_cursor(&dir), 99);
        assert_eq!(read_marker(&dir), None);
        write_marker(&dir, "127.0.0.1:7007").unwrap();
        assert_eq!(read_marker(&dir).as_deref(), Some("127.0.0.1:7007"));
        std::fs::remove_file(marker_path(&dir)).unwrap();
        assert_eq!(read_marker(&dir), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_is_capped_exponential_with_deterministic_jitter() {
        // Deterministic: same (seed, attempt) → same delay.
        assert_eq!(backoff(3, 42), backoff(3, 42));
        // Jitter varies with the seed.
        assert_ne!(backoff(3, 1), backoff(3, 2));
        let base = Duration::from_millis(BACKOFF_BASE_MS);
        let cap = Duration::from_millis(BACKOFF_CAP_MS);
        // Monotone envelope: each step's floor doubles until the cap.
        for attempt in 0..12u32 {
            let d = backoff(attempt, 7);
            let floor =
                Duration::from_millis((BACKOFF_BASE_MS << attempt.min(6)).min(BACKOFF_CAP_MS));
            assert!(d >= floor && d < floor + base, "attempt {attempt}: {d:?}");
            assert!(d < cap + base);
        }
    }
}
