//! Checkpoint documents: the compacted prefix of a session's op history.
//!
//! A checkpoint folds everything the WAL said up to some LSN into one
//! JSON document, letting the store truncate the log. Compaction is
//! **byte-exact by construction**: a session rebuilt from checkpoint +
//! tail must be bit-identical to one that replayed the full original log,
//! because the server's determinism contract promises byte-identical
//! responses after recovery.
//!
//! That constraint dictates what can and cannot be folded:
//!
//! * the maximal *leading run* of plain knowledge ops (before the first
//!   update/view/undo/label-set op) folds into a `sider_core::wire`
//!   session snapshot — replaying the snapshot issues exactly the same
//!   `add_*` calls the original ops did;
//! * everything after that run is kept as literal ops. An `update` cannot
//!   be folded into fitted state because the warm solver's trajectory
//!   (which classes split when, which multipliers warm-started) is part
//!   of the bytes later responses depend on — warm and cold paths agree
//!   only to solver tolerance, not bitwise. A `view` cannot be dropped
//!   because it advanced the session RNG.
//!
//! Compaction therefore bounds *log framing and parsing* overhead and
//! keeps one self-contained recovery document per session; it does not
//! shorten replay compute for histories dominated by updates/views —
//! that is the honest price of bit-exact recovery (see
//! `docs/ARCHITECTURE.md` §5).

use crate::ops::{self, Op, OpKind};
use sider_core::{wire, EdaSession};
use sider_json::Json;
use sider_par::ThreadPool;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Magic string of checkpoint documents.
pub const CHECKPOINT_FORMAT: &str = "sider-checkpoint";

/// Current checkpoint document version.
pub const CHECKPOINT_VERSION: f64 = 1.0;

/// A parsed checkpoint: everything needed to rebuild the session up to
/// `last_lsn`, after which the WAL tail continues.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// LSN of the last op folded into this document; WAL records with
    /// larger LSNs are the tail.
    pub last_lsn: u64,
    /// The create op body (dataset ref / inline CSV + seed).
    pub create: Json,
    /// The folded leading knowledge run as a `sider-session` wire
    /// snapshot, when any ops folded.
    pub snapshot: Option<Json>,
    /// The unfoldable remainder of the history, in LSN order.
    pub ops: Vec<Op>,
}

impl Checkpoint {
    /// Compact a history into a new checkpoint. `prior` is the previous
    /// checkpoint (if any) and `tail` the WAL ops logged since it (the
    /// create record included when no prior checkpoint exists). The
    /// dataset identity (`name`, `n`, `d`) seeds the folded snapshot's
    /// header.
    pub fn build(
        prior: Option<&Checkpoint>,
        tail: &[Op],
        name: &str,
        n: usize,
        d: usize,
    ) -> Result<Checkpoint, String> {
        let (create, mut stmts, mut rest, mut last_lsn) = match prior {
            Some(cp) => {
                let stmts = match &cp.snapshot {
                    Some(snap) => snap
                        .require_arr("knowledge")
                        .map_err(|e| e.to_string())?
                        .to_vec(),
                    None => Vec::new(),
                };
                (cp.create.clone(), stmts, cp.ops.clone(), cp.last_lsn)
            }
            None => {
                let first = tail.first().ok_or("empty history has no create op")?;
                if first.kind != OpKind::Create {
                    return Err(format!(
                        "history starts with '{}', not 'create'",
                        first.kind.as_str()
                    ));
                }
                (first.body.clone(), Vec::new(), Vec::new(), first.lsn)
            }
        };
        let skip_create = prior.is_none() as usize;
        // A crash can land between a checkpoint's rename and the WAL
        // truncation it precedes — tail records at or below the prior
        // checkpoint's LSN are already folded, skip them.
        let already_folded = prior.map(|cp| cp.last_lsn).unwrap_or(0);
        for op in tail[skip_create..]
            .iter()
            .filter(|op| op.lsn > already_folded)
        {
            // The fold is open while the history is still a pure run of
            // plain knowledge statements; the first op of any other shape
            // closes it for good (order matters for everything after).
            if rest.is_empty() {
                if let Some(stmt) = foldable_statement(op) {
                    stmts.push(stmt);
                    last_lsn = op.lsn;
                    continue;
                }
            }
            rest.push(op.clone());
            last_lsn = op.lsn;
        }
        let snapshot = if stmts.is_empty() {
            None
        } else {
            Some(Json::obj([
                ("format", Json::from("sider-session")),
                ("version", Json::from(1.0)),
                (
                    "dataset",
                    Json::obj([
                        ("name", Json::from(name)),
                        ("n", Json::from(n)),
                        ("d", Json::from(d)),
                    ]),
                ),
                ("knowledge", Json::Arr(stmts)),
            ]))
        };
        Ok(Checkpoint {
            last_lsn,
            create,
            snapshot,
            ops: rest,
        })
    }

    /// Serialize to the on-disk JSON document.
    pub fn to_json(&self) -> Json {
        let mut map = BTreeMap::new();
        map.insert("format".into(), Json::from(CHECKPOINT_FORMAT));
        map.insert("version".into(), Json::from(CHECKPOINT_VERSION));
        map.insert("last_lsn".into(), Json::from(self.last_lsn));
        map.insert("create".into(), self.create.clone());
        if let Some(snap) = &self.snapshot {
            map.insert("snapshot".into(), snap.clone());
        }
        map.insert(
            "ops".into(),
            Json::arr(self.ops.iter().map(|op| op.to_json())),
        );
        Json::Obj(map)
    }

    /// Parse an on-disk checkpoint document, rejecting unknown formats
    /// and versions (a newer server's checkpoint must not be silently
    /// misread as this version's schema).
    pub fn from_json(json: &Json) -> Result<Checkpoint, String> {
        if json.get("format").and_then(Json::as_str) != Some(CHECKPOINT_FORMAT) {
            return Err("not a sider-checkpoint document".into());
        }
        if json.require_num("version")? != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {:?}",
                json.get("version")
            ));
        }
        let last_lsn = json.require_num("last_lsn")?;
        if !(last_lsn.is_finite() && last_lsn >= 1.0 && last_lsn.fract() == 0.0) {
            return Err(format!("bad checkpoint last_lsn: {last_lsn}"));
        }
        let create = json
            .get("create")
            .cloned()
            .ok_or("checkpoint missing 'create'")?;
        let snapshot = json.get("snapshot").cloned();
        let ops = json
            .require_arr("ops")?
            .iter()
            .map(Op::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Checkpoint {
            last_lsn: last_lsn as u64,
            create,
            snapshot,
            ops,
        })
    }

    /// Rebuild the session this checkpoint describes, then replay
    /// `wal_tail` (ops with LSN beyond `last_lsn`) on top. Byte-identical
    /// to replaying the original uncompacted history.
    pub fn replay(
        &self,
        wal_tail: &[Op],
        pool: Arc<ThreadPool>,
        resolver: ops::DatasetResolver<'_>,
    ) -> Result<EdaSession, String> {
        let mut session = ops::create_session(&self.create, pool, resolver)
            .map_err(|e| format!("create (lsn 1): {e}"))?;
        if let Some(snap) = &self.snapshot {
            wire::snapshot_from_json(&mut session, snap)
                .map_err(|e| format!("folded snapshot: {e}"))?;
        }
        for op in &self.ops {
            ops::apply(&mut session, op.kind, &op.body)
                .map_err(|e| format!("{} (lsn {}): {e}", op.kind.as_str(), op.lsn))?;
        }
        // Tail records at or below `last_lsn` were already folded into
        // this document — skipping them makes replay idempotent against a
        // WAL whose truncation raced a crash.
        for op in wal_tail.iter().filter(|op| op.lsn > self.last_lsn) {
            ops::apply(&mut session, op.kind, &op.body)
                .map_err(|e| format!("{} (lsn {}): {e}", op.kind.as_str(), op.lsn))?;
        }
        Ok(session)
    }
}

/// The wire-snapshot statement equivalent of a knowledge op, when the op
/// is foldable: a plain `kind`/`rows`/`axes` body (label-set selections
/// are kept as literal ops — they resolve through the dataset's label
/// table rather than carrying rows).
fn foldable_statement(op: &Op) -> Option<Json> {
    if op.kind != OpKind::Knowledge
        || op.body.get("label_set").is_some()
        || op.body.get("class").is_some()
    {
        return None;
    }
    let mut stmt = BTreeMap::new();
    stmt.insert("kind".into(), op.body.get("kind")?.clone());
    if let Some(rows) = op.body.get("rows") {
        stmt.insert("rows".into(), rows.clone());
    }
    if let Some(axes) = op.body.get("axes") {
        stmt.insert("axes".into(), axes.clone());
    }
    Some(Json::Obj(stmt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sider_projection::Method;

    fn op(lsn: u64, kind: OpKind, body: &str) -> Op {
        Op {
            lsn,
            kind,
            body: Json::parse(body).unwrap(),
        }
    }

    fn history() -> Vec<Op> {
        vec![
            op(1, OpKind::Create, r#"{"dataset":"fig2","seed":7}"#),
            op(2, OpKind::Knowledge, r#"{"kind":"margin"}"#),
            op(
                3,
                OpKind::Knowledge,
                r#"{"kind":"cluster","rows":[0,1,2,3,4,5,6,7]}"#,
            ),
            op(4, OpKind::Update, "{}"),
            op(5, OpKind::View, r#"{"method":"pca"}"#),
            op(
                6,
                OpKind::Knowledge,
                r#"{"kind":"cluster","rows":[40,41,42,43,44]}"#,
            ),
            op(7, OpKind::Update, "{}"),
        ]
    }

    fn fingerprint(session: &mut EdaSession) -> (String, u64, String) {
        let snap = wire::snapshot_to_json(session).dump();
        let kl = session.information_nats().to_bits();
        let view = session.next_view(&Method::Pca).unwrap();
        let probe = wire::view_to_json(&view).dump();
        (snap, kl, probe)
    }

    #[test]
    fn fold_covers_leading_knowledge_run_only() {
        let cp = Checkpoint::build(None, &history(), "three-d-four-clusters", 150, 3).unwrap();
        assert_eq!(cp.last_lsn, 7);
        let folded = cp.snapshot.as_ref().unwrap();
        assert_eq!(folded.require_arr("knowledge").unwrap().len(), 2);
        // update/view/knowledge/update stay literal.
        let kinds: Vec<&str> = cp.ops.iter().map(|o| o.kind.as_str()).collect();
        assert_eq!(kinds, vec!["update", "view", "knowledge", "update"]);
    }

    #[test]
    fn label_set_knowledge_is_not_folded() {
        let ops = vec![
            op(1, OpKind::Create, r#"{"dataset":"fig2"}"#),
            op(
                2,
                OpKind::Knowledge,
                r#"{"kind":"cluster","label_set":0,"class":1}"#,
            ),
        ];
        let cp = Checkpoint::build(None, &ops, "x", 150, 3).unwrap();
        assert!(cp.snapshot.is_none());
        assert_eq!(cp.ops.len(), 1);
    }

    #[test]
    fn document_roundtrips_and_rejects_bad_versions() {
        let cp = Checkpoint::build(None, &history(), "three-d-four-clusters", 150, 3).unwrap();
        let doc = cp.to_json();
        let back = Checkpoint::from_json(&Json::parse(&doc.dump()).unwrap()).unwrap();
        assert_eq!(back.last_lsn, cp.last_lsn);
        assert_eq!(back.ops.len(), cp.ops.len());
        assert_eq!(back.to_json().dump(), doc.dump());

        let mut wrong = doc.clone();
        if let Json::Obj(map) = &mut wrong {
            map.insert("version".into(), Json::from(2.0));
        }
        assert!(Checkpoint::from_json(&wrong).is_err());
        assert!(Checkpoint::from_json(&Json::parse(r#"{"format":"tar"}"#).unwrap()).is_err());
    }

    #[test]
    fn replay_from_checkpoint_is_byte_identical_to_full_replay() {
        let pool = Arc::new(ThreadPool::new(1));
        let resolver: ops::DatasetResolver<'_> = &ops::resolve_dataset;
        let history = history();

        // Ground truth: replay the raw history start to finish.
        let mut direct =
            ops::create_session(&history[0].body, Arc::clone(&pool), resolver).unwrap();
        for o in &history[1..] {
            ops::apply(&mut direct, o.kind, &o.body).unwrap();
        }

        // Compacted: fold at LSN 5, replay checkpoint + remaining tail.
        let cp = Checkpoint::build(None, &history[..5], "three-d-four-clusters", 150, 3).unwrap();
        assert_eq!(cp.last_lsn, 5);
        let mut recovered = cp
            .replay(&history[5..], Arc::clone(&pool), resolver)
            .unwrap();

        // And compacted twice: checkpoint the checkpoint plus more tail.
        let cp2 =
            Checkpoint::build(Some(&cp), &history[5..6], "three-d-four-clusters", 150, 3).unwrap();
        assert_eq!(cp2.last_lsn, 6);
        let mut recovered2 = cp2
            .replay(&history[6..], Arc::clone(&pool), resolver)
            .unwrap();

        let expected = fingerprint(&mut direct);
        assert_eq!(fingerprint(&mut recovered), expected);
        assert_eq!(fingerprint(&mut recovered2), expected);
    }

    #[test]
    fn replay_reports_the_failing_lsn() {
        let ops = [
            op(1, OpKind::Create, r#"{"dataset":"fig2"}"#),
            op(
                2,
                OpKind::Knowledge,
                r#"{"kind":"cluster","rows":[999999]}"#,
            ),
        ];
        let cp = Checkpoint::build(None, &ops[..1], "three-d-four-clusters", 150, 3).unwrap();
        let err = cp
            .replay(
                &ops[1..],
                Arc::new(ThreadPool::new(1)),
                &crate::ops::resolve_dataset,
            )
            .unwrap_err();
        assert!(err.contains("lsn 2"), "{err}");
    }
}
