//! `sider_store` — the durable session store: a per-session write-ahead
//! op-log with checkpoint compaction and crash recovery.
//!
//! The paper's loop accumulates the analyst's *subjective knowledge* —
//! the one thing the system must never forget — yet a `sider_server`
//! process keeps every [`EdaSession`] in memory. This crate persists each
//! session as an **append-only log of wire-format operations** (create,
//! knowledge, update, undo, view, snapshot-replay) so a restarted server
//! rebuilds every session by replay. Because the whole stack is
//! byte-deterministic (the `sider_par` pool contract promoted through the
//! JSON layer), replay does not merely approximate the lost state — it
//! reproduces it **bit for bit**, and the recovered server's responses
//! are byte-identical to those a never-restarted twin would have served.
//!
//! On-disk layout under the store directory:
//!
//! ```text
//! <data-dir>/
//! ├── meta.json              # {"format":"sider-store","next_id":N,…}
//! └── sessions/
//!     └── s3/
//!         ├── wal.log        # length+CRC-framed op records (wal module)
//!         └── checkpoint.json  # compacted prefix (checkpoint module)
//! ```
//!
//! `meta.json` persists the dense session-ID counter so IDs minted after
//! a restart never collide with recovered ones. Appends follow the
//! configured [`FsyncPolicy`]; a torn final WAL record (the crash arrived
//! mid-write) is truncated away on recovery, never fatal. Checkpoints
//! fold the foldable prefix into a `sider_core::wire` snapshot and
//! truncate the log ([`checkpoint`] documents exactly what byte-exactness
//! allows to fold).
//!
//! [`EdaSession`]: sider_core::EdaSession

#![warn(missing_docs)]

pub mod checkpoint;
pub mod ops;
pub mod ship;
pub mod stripes;
pub mod wal;

use checkpoint::Checkpoint;
use ops::{Op, OpKind};
use sider_core::EdaSession;
use sider_json::Json;
use sider_par::ThreadPool;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Environment variable naming the store directory (`sider serve
/// --data-dir` overrides).
pub const DATA_DIR_ENV_VAR: &str = "SIDER_DATA_DIR";

/// Environment variable selecting the fsync policy
/// (`always` | `never` | a positive integer _n_ meaning every _n_ ops).
pub const FSYNC_ENV_VAR: &str = "SIDER_FSYNC";

/// Environment variable setting the automatic checkpoint threshold
/// (ops logged since the last checkpoint).
pub const CHECKPOINT_EVERY_ENV_VAR: &str = "SIDER_CHECKPOINT_EVERY";

/// Default automatic checkpoint threshold.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 64;

/// When to `fsync` the WAL after appending a record.
///
/// The write itself always reaches the kernel before the client sees a
/// response — a killed *process* loses nothing under any policy; the
/// policy only decides exposure to a killed *machine*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acknowledged op survives power loss.
    Always,
    /// `fsync` every _n_-th record: bounded exposure, amortized cost.
    EveryN(u64),
    /// Never `fsync`: the OS flushes on its own schedule.
    Never,
}

impl FsyncPolicy {
    /// Parse `always` | `never` | a positive integer _n_ (= every _n_ ops).
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.parse::<u64>() {
                Ok(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "bad fsync policy '{other}' (always | never | a positive integer)"
                )),
            },
        }
    }

    /// The wire/string form accepted by [`FsyncPolicy::parse`].
    pub fn as_string(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Never => "never".into(),
            FsyncPolicy::EveryN(n) => n.to_string(),
        }
    }
}

/// Configuration of a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory of the store (created if missing).
    pub dir: PathBuf,
    /// When to `fsync` WAL appends.
    pub fsync: FsyncPolicy,
    /// Checkpoint a session automatically once this many ops accumulated
    /// in its WAL since the last checkpoint.
    pub checkpoint_every: u64,
}

impl StoreConfig {
    /// Defaults (`fsync: always`, checkpoint every
    /// [`DEFAULT_CHECKPOINT_EVERY`] ops) for a directory.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }

    /// Apply `SIDER_FSYNC` / `SIDER_CHECKPOINT_EVERY` overrides.
    pub fn with_env_overrides(mut self) -> Result<Self, String> {
        if let Ok(v) = std::env::var(FSYNC_ENV_VAR) {
            if !v.is_empty() {
                self.fsync = FsyncPolicy::parse(&v)?;
            }
        }
        if let Ok(v) = std::env::var(CHECKPOINT_EVERY_ENV_VAR) {
            if !v.is_empty() {
                self.checkpoint_every = v
                    .parse::<u64>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad {CHECKPOINT_EVERY_ENV_VAR}: {v:?}"))?;
            }
        }
        Ok(self)
    }
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// On-disk bytes that should parse did not (a damaged checkpoint or
    /// an unparsable — as opposed to torn — record).
    Corrupt(String),
    /// A logged op failed to re-apply during recovery.
    Replay(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::Replay(m) => write!(f, "store replay: {m}"),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Observable per-session persistence state (the `GET /api/store`
/// payload and the `sider store inspect` rows).
#[derive(Debug, Clone)]
pub struct SessionStatus {
    /// Numeric session ID.
    pub id: u64,
    /// LSN of the last durably logged op.
    pub last_lsn: u64,
    /// Ops currently in the WAL (resets to 0 at each checkpoint).
    pub wal_records: u64,
    /// WAL file size in bytes.
    pub wal_bytes: u64,
    /// Checkpoint file size in bytes (0 when none exists).
    pub checkpoint_bytes: u64,
    /// LSN the checkpoint covers up to (`None` when none exists).
    pub checkpoint_lsn: Option<u64>,
}

impl SessionStatus {
    /// JSON form used by the API and the inspect subcommand.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::from(format!("s{}", self.id))),
            ("last_lsn", Json::from(self.last_lsn)),
            ("wal_records", Json::from(self.wal_records)),
            ("wal_bytes", Json::from(self.wal_bytes)),
            ("checkpoint_bytes", Json::from(self.checkpoint_bytes)),
            (
                "checkpoint_lsn",
                self.checkpoint_lsn.map(Json::from).unwrap_or(Json::Null),
            ),
        ])
    }
}

/// A torn WAL tail truncated during recovery — the record (or records)
/// that were mid-write when the process died. Recovery reports these so
/// operators can see exactly where and how much was cut, instead of the
/// loss being visible only in a transient log line.
#[derive(Debug, Clone)]
pub struct TornTail {
    /// Session whose WAL was truncated.
    pub session: u64,
    /// Byte offset the WAL was truncated to (end of the last valid
    /// record).
    pub offset: u64,
    /// Bytes dropped past the truncation point.
    pub lost_bytes: u64,
}

impl TornTail {
    /// JSON row for the bind-time report and `GET /api/store`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("lost_bytes", Json::from(self.lost_bytes)),
            ("offset", Json::from(self.offset)),
            ("session", Json::from(format!("s{}", self.session))),
        ])
    }
}

/// One session's open log: the WAL file handle plus bookkeeping.
#[derive(Debug)]
struct SessionLog {
    id: u64,
    dir: PathBuf,
    file: File,
    last_lsn: u64,
    wal_records: u64,
    appends_since_sync: u64,
    /// LSN the on-disk checkpoint covers, cached so status queries do
    /// not re-read and re-parse `checkpoint.json` (which can embed a
    /// large folded inline-CSV create) on every `GET /api/store`.
    checkpoint_lsn: Option<u64>,
}

impl SessionLog {
    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    fn checkpoint_path(dir: &Path) -> PathBuf {
        dir.join("checkpoint.json")
    }

    /// Append one framed op record. The payload is serialized straight
    /// from the borrowed body — the op's `{"body":…,"lsn":…,"op":…}`
    /// JSON is assembled textually (keys in `sider_json`'s sorted order)
    /// so the hot write path never deep-clones a potentially 64 MB body.
    fn append(
        &mut self,
        lsn: u64,
        kind: OpKind,
        body: &Json,
        fsync: FsyncPolicy,
    ) -> Result<(), StoreError> {
        let body_text = body.dump();
        let mut payload = String::with_capacity(body_text.len() + 48);
        payload.push_str("{\"body\":");
        payload.push_str(&body_text);
        payload.push_str(",\"lsn\":");
        payload.push_str(&lsn.to_string());
        payload.push_str(",\"op\":\"");
        payload.push_str(kind.as_str());
        payload.push_str("\"}");
        wal::append_record(&mut self.file, payload.as_bytes())?;
        self.last_lsn = lsn;
        self.wal_records += 1;
        self.appends_since_sync += 1;
        let due = match fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if due {
            self.file.sync_data()?;
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    fn status(&self) -> SessionStatus {
        let dir = &self.dir;
        SessionStatus {
            id: self.id,
            last_lsn: self.last_lsn,
            wal_records: self.wal_records,
            wal_bytes: std::fs::metadata(Self::wal_path(dir))
                .map(|m| m.len())
                .unwrap_or(0),
            checkpoint_bytes: match self.checkpoint_lsn {
                Some(_) => std::fs::metadata(Self::checkpoint_path(dir))
                    .map(|m| m.len())
                    .unwrap_or(0),
                None => 0,
            },
            checkpoint_lsn: self.checkpoint_lsn,
        }
    }
}

fn read_checkpoint(dir: &Path) -> Result<Option<Checkpoint>, StoreError> {
    let path = SessionLog::checkpoint_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let json =
        Json::parse(&text).map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
    Checkpoint::from_json(&json)
        .map(Some)
        .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))
}

/// Parse WAL payloads into ops, rejecting unparsable (non-torn) records.
fn parse_wal_ops(dir: &Path, payloads: &[Vec<u8>]) -> Result<Vec<Op>, StoreError> {
    payloads
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Op::from_payload(p).map_err(|e| {
                StoreError::Corrupt(format!(
                    "{}: record {i}: {e}",
                    SessionLog::wal_path(dir).display()
                ))
            })
        })
        .collect()
}

/// Atomically replace `path` with `contents` (tmp + fsync + rename).
pub(crate) fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        std::io::Write::write_all(&mut f, contents)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself (best effort — not all platforms allow
    // syncing a directory handle).
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The durable session store: one WAL + checkpoint pair per session under
/// one root directory, plus the persistent session-ID counter.
#[derive(Debug)]
pub struct Store {
    config: StoreConfig,
    sessions_dir: PathBuf,
    meta_path: PathBuf,
    /// Highest ID ever handed out + 1, persisted in `meta.json`.
    next_id: Mutex<u64>,
    logs: Mutex<BTreeMap<u64, Arc<Mutex<SessionLog>>>>,
    /// The replication op stream: every acknowledged mutation is also
    /// appended here (ship module) so followers can tail it.
    ship: Mutex<ship::ShipLog>,
    /// Bounded in-memory tail of `ship`, the fast path for followers
    /// that are keeping up.
    ship_buf: ship::ShipBuffer,
    /// Torn WAL tails truncated by recovery since this handle opened.
    recovered: Mutex<Vec<TornTail>>,
}

impl Store {
    /// Open (creating if necessary) a store rooted at `config.dir`.
    pub fn open(config: StoreConfig) -> Result<Store, StoreError> {
        let sessions_dir = config.dir.join("sessions");
        std::fs::create_dir_all(&sessions_dir)?;
        let ship_log = ship::ShipLog::open(&config.dir)?;
        let ship_buf = ship::ShipBuffer::new(ship::SHIP_BUFFER_MAX_BYTES, ship_log.last_seq());
        let meta_path = config.dir.join("meta.json");
        let next_id = match std::fs::read_to_string(&meta_path) {
            Ok(text) => {
                let json = Json::parse(&text)
                    .map_err(|e| StoreError::Corrupt(format!("{}: {e}", meta_path.display())))?;
                let n = json
                    .require_num("next_id")
                    .map_err(|e| StoreError::Corrupt(format!("{}: {e}", meta_path.display())))?;
                if !(n.is_finite() && n >= 1.0 && n.fract() == 0.0) {
                    return Err(StoreError::Corrupt(format!(
                        "{}: bad next_id {n}",
                        meta_path.display()
                    )));
                }
                n as u64
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 1,
            Err(e) => return Err(e.into()),
        };
        Ok(Store {
            config,
            sessions_dir,
            meta_path,
            next_id: Mutex::new(next_id),
            logs: Mutex::new(BTreeMap::new()),
            ship: Mutex::new(ship_log),
            ship_buf,
            recovered: Mutex::new(Vec::new()),
        })
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The next session ID a manager should mint: past every ID ever
    /// handed out (per `meta.json`) *and* every session directory on
    /// disk, so recovered and new IDs never collide.
    pub fn next_session_id(&self) -> Result<u64, StoreError> {
        let persisted = *self.next_id.lock().expect("meta lock");
        let max_on_disk = self.session_ids()?.into_iter().max().unwrap_or(0);
        Ok(persisted.max(max_on_disk + 1))
    }

    fn persist_next_id(&self, candidate: u64) -> Result<(), StoreError> {
        let mut next = self.next_id.lock().expect("meta lock");
        if candidate <= *next {
            return Ok(());
        }
        let doc = Json::obj([
            ("format", Json::from("sider-store")),
            ("version", Json::from(1.0)),
            ("next_id", Json::from(candidate)),
        ]);
        write_atomic(&self.meta_path, format!("{}\n", doc.dump()).as_bytes())?;
        *next = candidate;
        Ok(())
    }

    fn session_dir(&self, id: u64) -> PathBuf {
        self.sessions_dir.join(format!("s{id}"))
    }

    /// Numeric IDs of every session directory on disk.
    pub fn session_ids(&self) -> Result<Vec<u64>, StoreError> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.sessions_dir)? {
            let entry = entry?;
            if let Some(id) = entry
                .file_name()
                .to_str()
                .and_then(|name| name.strip_prefix('s'))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn log_of(&self, id: u64) -> Result<Arc<Mutex<SessionLog>>, StoreError> {
        self.logs
            .lock()
            .expect("logs lock")
            .get(&id)
            .cloned()
            .ok_or_else(|| StoreError::Corrupt(format!("session s{id} is not open in this store")))
    }

    /// Start a new session history: create its directory, write the
    /// `create` op as LSN 1, and advance the persistent ID counter.
    pub fn create_session(&self, id: u64, body: &Json) -> Result<(), StoreError> {
        let dir = self.session_dir(id);
        std::fs::create_dir_all(&dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(SessionLog::wal_path(&dir))?;
        let mut log = SessionLog {
            id,
            dir,
            file,
            last_lsn: 0,
            wal_records: 0,
            appends_since_sync: 0,
            checkpoint_lsn: None,
        };
        log.append(1, OpKind::Create, body, self.config.fsync)?;
        self.persist_next_id(id + 1)?;
        self.logs
            .lock()
            .expect("logs lock")
            .insert(id, Arc::new(Mutex::new(log)));
        self.ship_append(id, OpKind::Create.as_str(), 1, body)?;
        Ok(())
    }

    /// Append one op to a session's WAL; returns its LSN.
    pub fn append(&self, id: u64, kind: OpKind, body: &Json) -> Result<u64, StoreError> {
        let log = self.log_of(id)?;
        let mut log = log.lock().expect("session log lock");
        let lsn = log.last_lsn + 1;
        log.append(lsn, kind, body, self.config.fsync)?;
        self.ship_append(id, kind.as_str(), lsn, body)?;
        Ok(lsn)
    }

    /// Mirror one committed op into the ship log and its in-memory
    /// buffer. Failure is an error for ops (the caller unloads and
    /// recovery re-ships via reconciliation), best-effort for callers
    /// that pass ship-only kinds with nothing to roll back.
    fn ship_append(&self, id: u64, op: &str, lsn: u64, body: &Json) -> Result<(), StoreError> {
        let mut log = self.ship.lock().expect("ship log lock");
        let (seq, payload) = log.append(id, op, lsn, body)?;
        // Push under the ship lock so the buffer observes commit order.
        self.ship_buf.push(seq, payload);
        Ok(())
    }

    /// Ops accumulated in a session's WAL since its last checkpoint —
    /// what the automatic-checkpoint threshold compares against.
    pub fn wal_records(&self, id: u64) -> u64 {
        self.log_of(id)
            .map(|log| log.lock().expect("session log lock").wal_records)
            .unwrap_or(0)
    }

    /// Compact a session's history: fold WAL + prior checkpoint into a
    /// fresh checkpoint document and truncate the WAL. `name`/`n`/`d`
    /// identify the dataset for the folded snapshot's header.
    pub fn checkpoint(
        &self,
        id: u64,
        name: &str,
        n: usize,
        d: usize,
    ) -> Result<SessionStatus, StoreError> {
        let log = self.log_of(id)?;
        let mut log = log.lock().expect("session log lock");
        let dir = log.dir.clone();
        let prior = read_checkpoint(&dir)?;
        let scan = wal::scan(&SessionLog::wal_path(&dir))?;
        if scan.torn {
            // Only a crash can tear the WAL; on a live store this means
            // disk-level damage. Refuse to fold it into a checkpoint.
            return Err(StoreError::Corrupt(format!(
                "{}: torn record on a live WAL",
                SessionLog::wal_path(&dir).display()
            )));
        }
        let tail = parse_wal_ops(&dir, &scan.payloads)?;
        let cp =
            Checkpoint::build(prior.as_ref(), &tail, name, n, d).map_err(StoreError::Corrupt)?;
        write_atomic(
            &SessionLog::checkpoint_path(&dir),
            format!("{}\n", cp.to_json().dump()).as_bytes(),
        )?;
        log.file.set_len(0)?;
        log.file.sync_data()?;
        log.wal_records = 0;
        log.appends_since_sync = 0;
        log.checkpoint_lsn = Some(cp.last_lsn);
        Ok(log.status())
    }

    /// Forget a session durably (delete its directory). Used for both
    /// client deletes and idle eviction.
    pub fn remove_session(&self, id: u64) -> Result<(), StoreError> {
        self.logs.lock().expect("logs lock").remove(&id);
        match std::fs::remove_dir_all(self.session_dir(id)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        // Best-effort: the dir is gone, so reconciliation at next open
        // re-ships the remove even if this append fails.
        if let Err(e) = self.ship_append(id, "remove", 0, &Json::Null) {
            eprintln!("sider_store: ship remove s{id}: {e}");
        }
        Ok(())
    }

    /// Rebuild one session from disk with the default dataset resolver.
    pub fn recover_session(
        &self,
        id: u64,
        pool: Arc<ThreadPool>,
    ) -> Result<EdaSession, StoreError> {
        self.recover_session_with(id, pool, &ops::resolve_dataset)
    }

    /// Rebuild one session from disk: load the latest valid checkpoint,
    /// truncate a torn WAL tail, and replay checkpoint + tail through the
    /// single [`ops::apply`] path. Registers the session's log for
    /// further appends.
    pub fn recover_session_with(
        &self,
        id: u64,
        pool: Arc<ThreadPool>,
        resolver: ops::DatasetResolver<'_>,
    ) -> Result<EdaSession, StoreError> {
        let dir = self.session_dir(id);
        let wal_path = SessionLog::wal_path(&dir);
        let prior = read_checkpoint(&dir)?;
        let scan = wal::scan(&wal_path)?;
        if scan.torn {
            // The tear is the op that never finished being acknowledged;
            // cut it (and anything after it) away so appends resume from
            // a clean frame boundary. Record the cut so the bind-time
            // report and `GET /api/store` can surface the loss.
            let file_len = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
            let file = OpenOptions::new().write(true).open(&wal_path)?;
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
            let event = TornTail {
                session: id,
                offset: scan.valid_len,
                lost_bytes: file_len.saturating_sub(scan.valid_len),
            };
            eprintln!(
                "sider_store: session s{id}: torn WAL tail truncated at byte {} ({} bytes lost)",
                event.offset, event.lost_bytes
            );
            self.recovered.lock().expect("recovered lock").push(event);
        }
        let tail = parse_wal_ops(&dir, &scan.payloads)?;
        let checkpoint_lsn = prior.as_ref().map(|cp| cp.last_lsn);
        let (session, last_lsn) = match prior {
            Some(cp) => {
                let last = tail.last().map(|op| op.lsn).unwrap_or(0).max(cp.last_lsn);
                let session = cp
                    .replay(&tail, pool, resolver)
                    .map_err(|e| StoreError::Replay(format!("session s{id}: {e}")))?;
                (session, last)
            }
            None => {
                let first = tail.first().ok_or_else(|| {
                    StoreError::Corrupt(format!("session s{id}: no checkpoint and empty WAL"))
                })?;
                if first.kind != OpKind::Create {
                    return Err(StoreError::Corrupt(format!(
                        "session s{id}: history starts with '{}', not 'create'",
                        first.kind.as_str()
                    )));
                }
                let mut session = ops::create_session(&first.body, pool, resolver)
                    .map_err(|e| StoreError::Replay(format!("session s{id}: create: {e}")))?;
                for op in &tail[1..] {
                    ops::apply(&mut session, op.kind, &op.body).map_err(|e| {
                        StoreError::Replay(format!(
                            "session s{id}: {} (lsn {}): {e}",
                            op.kind.as_str(),
                            op.lsn
                        ))
                    })?;
                }
                (session, tail.last().map(|op| op.lsn).unwrap_or(1))
            }
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        let log = SessionLog {
            id,
            dir,
            file,
            last_lsn,
            wal_records: tail.len() as u64,
            appends_since_sync: 0,
            checkpoint_lsn,
        };
        self.logs
            .lock()
            .expect("logs lock")
            .insert(id, Arc::new(Mutex::new(log)));
        Ok(session)
    }

    /// Rebuild every session on disk. Session directories holding **no
    /// complete record and no checkpoint** — a crash between `mkdir` and
    /// the first acknowledged op, whether the WAL is absent, empty, or a
    /// single torn create frame — are swept away rather than failing the
    /// whole recovery: their create was never acknowledged to any
    /// client, so there is nothing to lose.
    pub fn recover_all(
        &self,
        pool: &Arc<ThreadPool>,
    ) -> Result<Vec<(u64, EdaSession)>, StoreError> {
        let mut out = Vec::new();
        for id in self.session_ids()? {
            let dir = self.session_dir(id);
            if !SessionLog::checkpoint_path(&dir).exists()
                && wal::scan(&SessionLog::wal_path(&dir))?.payloads.is_empty()
            {
                eprintln!(
                    "sider_store: dropping session directory {} with no acknowledged op",
                    dir.display()
                );
                let _ = std::fs::remove_dir_all(&dir);
                continue;
            }
            let session = self.recover_session(id, Arc::clone(pool))?;
            out.push((id, session));
        }
        self.ship_reconcile()?;
        Ok(out)
    }

    /// Bring the ship log back in line with the authoritative WALs and
    /// checkpoints. The ship log is derived and never fsynced, so after
    /// a crash (or on a pre-replication data dir) it may be missing
    /// committed history:
    ///
    /// - a session whose durable LSN exceeds its shipped horizon gets
    ///   its WAL-tail ops re-shipped;
    /// - a session compacted below the shipped horizon gets a
    ///   `checkpoint` bootstrap record (the ops no longer exist
    ///   individually — the checkpoint document *is* the state);
    /// - a session present in the ship log but gone from disk gets a
    ///   `remove`.
    ///
    /// Runs as part of [`Store::recover_all`], i.e. before a server
    /// starts streaming to followers.
    fn ship_reconcile(&self) -> Result<(), StoreError> {
        let state = ship::scan_state(&self.config.dir)?;
        let on_disk = self.session_ids()?;
        for &id in &on_disk {
            let dir = self.session_dir(id);
            let shipped = state.get(&id).copied().flatten().unwrap_or(0);
            let cp = read_checkpoint(&dir)?;
            let scan = wal::scan(&SessionLog::wal_path(&dir))?;
            let tail = parse_wal_ops(&dir, &scan.payloads)?;
            let durable = tail
                .last()
                .map(|op| op.lsn)
                .unwrap_or(0)
                .max(cp.as_ref().map(|c| c.last_lsn).unwrap_or(0));
            if shipped >= durable {
                continue;
            }
            let mut from = shipped;
            if let Some(cp) = cp {
                // History at or below the checkpoint LSN only exists
                // folded; if the follower horizon is below it, ship the
                // fold itself.
                if cp.last_lsn > from {
                    self.ship_append(id, "checkpoint", cp.last_lsn, &cp.to_json())?;
                    from = cp.last_lsn;
                }
            }
            for op in tail.iter().filter(|op| op.lsn > from) {
                self.ship_append(id, op.kind.as_str(), op.lsn, &op.body)?;
            }
        }
        for (&id, horizon) in &state {
            if horizon.is_some() && !on_disk.contains(&id) {
                self.ship_append(id, "remove", 0, &Json::Null)?;
            }
        }
        Ok(())
    }

    /// Torn WAL tails truncated by recovery since this handle opened —
    /// the bind-time data-loss report.
    pub fn recovery_report(&self) -> Vec<TornTail> {
        self.recovered.lock().expect("recovered lock").clone()
    }

    /// Sequence number of the last record in the ship log (0 = empty).
    pub fn ship_seq(&self) -> u64 {
        self.ship.lock().expect("ship log lock").last_seq()
    }

    /// Current size of the on-disk ship log in bytes.
    pub fn ship_bytes(&self) -> u64 {
        std::fs::metadata(ship::ShipLog::log_path(&self.config.dir))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Up to `limit` ship records with `seq >= from`: served from the
    /// in-memory buffer when the follower is keeping up, degrading to a
    /// linear tail of the on-disk `ship.log` when `from` has been
    /// evicted (a lagging or freshly resumed follower).
    pub fn ship_fetch(&self, from: u64, limit: usize) -> Result<Vec<ship::ShipRecord>, StoreError> {
        if let Some(payloads) = self.ship_buf.collect_from(from, limit) {
            return payloads
                .iter()
                .map(|p| ship::ShipRecord::from_payload(p).map_err(StoreError::Corrupt))
                .collect();
        }
        ship::read_records(&self.config.dir, from, limit)
    }

    /// Install a replicated checkpoint as a session's entire on-disk
    /// history: write the checkpoint document, clear the WAL, and ship
    /// it onward (for chained promotion). The caller rebuilds the
    /// in-memory session with [`Store::recover_session`] afterwards.
    /// Used by a follower when the leader compacted history below the
    /// follower's cursor — the individual ops no longer exist.
    pub fn adopt_checkpoint(&self, id: u64, doc: &Json) -> Result<(), StoreError> {
        let cp = Checkpoint::from_json(doc)
            .map_err(|e| StoreError::Corrupt(format!("session s{id}: shipped checkpoint: {e}")))?;
        let dir = self.session_dir(id);
        std::fs::create_dir_all(&dir)?;
        write_atomic(
            &SessionLog::checkpoint_path(&dir),
            format!("{}\n", doc.dump()).as_bytes(),
        )?;
        let wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(SessionLog::wal_path(&dir))?;
        wal.sync_data()?;
        self.logs.lock().expect("logs lock").remove(&id);
        self.persist_next_id(id + 1)?;
        self.ship_append(id, "checkpoint", cp.last_lsn, doc)?;
        Ok(())
    }

    /// Persistence status of every open session, in ID order.
    pub fn status(&self) -> Vec<SessionStatus> {
        self.logs
            .lock()
            .expect("logs lock")
            .values()
            .map(|log| log.lock().expect("session log lock").status())
            .collect()
    }

    /// Persistence status of one open session.
    pub fn status_of(&self, id: u64) -> Option<SessionStatus> {
        let log = self.log_of(id).ok()?;
        let status = log.lock().expect("session log lock").status();
        Some(status)
    }
}

/// Read-only report over a store directory that may belong to another
/// (even running) process — the `sider store inspect <dir>` payload.
/// Unlike [`Store::open`] it creates nothing.
///
/// Understands both layouts: a plain per-stripe (or legacy PR-5) store —
/// `meta.json` + `sessions/` at the root — and the striped layout
/// (`layout.json` + `stripe-{k}/` subdirectories), where the report
/// additionally carries `stripes` and a `per_stripe` array of totals and
/// every session row names its stripe.
pub fn inspect(dir: &Path) -> Result<Json, String> {
    match stripes::detect_stripes(dir).map_err(|e| e.to_string())? {
        Some(n) => inspect_striped(dir, n),
        None => inspect_flat(dir),
    }
}

/// `inspect` over the striped layout: per-stripe totals plus the merged
/// session list in global ID order (the deterministic aggregation
/// ordering every cross-stripe read uses).
fn inspect_striped(dir: &Path, n: usize) -> Result<Json, String> {
    let mut per_stripe = Vec::new();
    let mut sessions = Vec::new();
    let mut next_id = 1u64;
    for k in 0..n {
        let sdir = stripes::stripe_path(dir, k);
        let meta_path = sdir.join("meta.json");
        if let Ok(text) = std::fs::read_to_string(&meta_path) {
            let meta = Json::parse(&text).map_err(|e| format!("{}: {e}", meta_path.display()))?;
            if let Some(id) = meta.get("next_id").and_then(Json::as_num) {
                next_id = next_id.max(id as u64);
            }
        }
        let rows = inspect_sessions(&sdir.join("sessions"))?;
        let total = |key: &str| {
            rows.iter()
                .filter_map(|r| r.get(key).and_then(Json::as_num))
                .sum::<f64>()
        };
        per_stripe.push(Json::obj([
            ("stripe", Json::from(k)),
            ("sessions", Json::from(rows.len())),
            ("wal_records", Json::from(total("wal_records"))),
            ("wal_bytes", Json::from(total("wal_bytes"))),
            ("checkpoint_bytes", Json::from(total("checkpoint_bytes"))),
            ("ship_seq", Json::from(inspect_ship_seq(&sdir))),
            ("cursor", Json::from(ship::read_cursor(&sdir))),
        ]));
        for mut row in rows {
            if let Json::Obj(map) = &mut row {
                map.insert("stripe".into(), Json::from(k));
                next_id = next_id.max(
                    map.get("id")
                        .and_then(Json::as_str)
                        .and_then(|s| s.strip_prefix('s'))
                        .and_then(|d| d.parse::<u64>().ok())
                        .map(|id| id + 1)
                        .unwrap_or(1),
                );
            }
            sessions.push(row);
        }
    }
    sessions.sort_by_key(|row| {
        row.get("id")
            .and_then(Json::as_str)
            .and_then(|s| s.strip_prefix('s'))
            .and_then(|d| d.parse::<u64>().ok())
            .unwrap_or(u64::MAX)
    });
    Ok(Json::obj([
        ("dir", Json::from(dir.display().to_string())),
        ("stripes", Json::from(n)),
        ("next_id", Json::from(next_id)),
        ("per_stripe", Json::Arr(per_stripe)),
        ("sessions", Json::Arr(sessions)),
        ("replica", inspect_replica(dir)),
    ]))
}

/// Replication state readable offline: the follower role marker (if the
/// dir is a replica) — `{"leader":addr}` or null.
fn inspect_replica(dir: &Path) -> Json {
    match ship::read_marker(dir) {
        Some(leader) => Json::obj([("leader", Json::from(leader))]),
        None => Json::Null,
    }
}

/// Last ship-log sequence number of a stripe dir, read without opening
/// the store (0 when the log is absent or unreadable).
fn inspect_ship_seq(dir: &Path) -> u64 {
    wal::scan(&ship::ShipLog::log_path(dir))
        .ok()
        .and_then(|scan| {
            scan.payloads
                .iter()
                .filter_map(|p| {
                    std::str::from_utf8(p)
                        .ok()
                        .and_then(|t| ship::ShipRecord::from_payload(t).ok())
                })
                .map(|r| r.seq)
                .max()
        })
        .unwrap_or(0)
}

/// `inspect` over a flat (legacy or single-stripe) store directory.
fn inspect_flat(dir: &Path) -> Result<Json, String> {
    let meta_path = dir.join("meta.json");
    let meta = match std::fs::read_to_string(&meta_path) {
        Ok(text) => Json::parse(&text).map_err(|e| format!("{}: {e}", meta_path.display()))?,
        Err(e) => {
            return Err(format!(
                "{}: {e} (not a sider data dir?)",
                meta_path.display()
            ))
        }
    };
    let sessions = inspect_sessions(&dir.join("sessions"))?;
    Ok(Json::obj([
        ("dir", Json::from(dir.display().to_string())),
        (
            "next_id",
            meta.get("next_id").cloned().unwrap_or(Json::Null),
        ),
        ("sessions", Json::Arr(sessions)),
        ("ship_seq", Json::from(inspect_ship_seq(dir))),
        ("cursor", Json::from(ship::read_cursor(dir))),
        ("replica", inspect_replica(dir)),
    ]))
}

/// Per-session status rows (in ID order) for every `s{n}` directory under
/// `sessions_dir`, read without mutating anything.
fn inspect_sessions(sessions_dir: &Path) -> Result<Vec<Json>, String> {
    let mut ids = Vec::new();
    if let Ok(entries) = std::fs::read_dir(sessions_dir) {
        for entry in entries.flatten() {
            if let Some(id) = entry
                .file_name()
                .to_str()
                .and_then(|name| name.strip_prefix('s'))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    let mut sessions = Vec::new();
    for id in ids {
        let sdir = sessions_dir.join(format!("s{id}"));
        let scan = wal::scan(&SessionLog::wal_path(&sdir))
            .map_err(|e| format!("{}: {e}", SessionLog::wal_path(&sdir).display()))?;
        let wal_ops = parse_wal_ops(&sdir, &scan.payloads).map_err(|e| e.to_string())?;
        let checkpoint_lsn = match read_checkpoint(&sdir) {
            Ok(Some(cp)) => Some(cp.last_lsn),
            Ok(None) => None,
            Err(e) => return Err(e.to_string()),
        };
        let last_lsn = wal_ops
            .last()
            .map(|op| op.lsn)
            .unwrap_or(0)
            .max(checkpoint_lsn.unwrap_or(0));
        let status = SessionStatus {
            id,
            last_lsn,
            wal_records: wal_ops.len() as u64,
            wal_bytes: std::fs::metadata(SessionLog::wal_path(&sdir))
                .map(|m| m.len())
                .unwrap_or(0),
            checkpoint_bytes: std::fs::metadata(SessionLog::checkpoint_path(&sdir))
                .map(|m| m.len())
                .unwrap_or(0),
            checkpoint_lsn,
        };
        let mut row = status.to_json();
        if let Json::Obj(map) = &mut row {
            map.insert("torn_tail".into(), Json::from(scan.torn));
            if scan.torn {
                // Where recovery will cut, and how much it will drop —
                // visible before any server touches the dir.
                map.insert("torn_tail_offset".into(), Json::from(scan.valid_len));
                map.insert(
                    "torn_tail_lost_bytes".into(),
                    Json::from(
                        std::fs::metadata(SessionLog::wal_path(&sdir))
                            .map(|m| m.len())
                            .unwrap_or(scan.valid_len)
                            .saturating_sub(scan.valid_len),
                    ),
                );
            }
        }
        sessions.push(row);
    }
    Ok(sessions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> StoreConfig {
        let dir =
            std::env::temp_dir().join(format!("sider_store_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = StoreConfig::new(dir);
        config.fsync = FsyncPolicy::Never;
        config
    }

    fn body(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    fn pool() -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(1))
    }

    fn scripted_history(store: &Store, id: u64) {
        store
            .create_session(id, &body(r#"{"dataset":"fig2","seed":7}"#))
            .unwrap();
        store
            .append(id, OpKind::Knowledge, &body(r#"{"kind":"margin"}"#))
            .unwrap();
        store
            .append(
                id,
                OpKind::Knowledge,
                &body(r#"{"kind":"cluster","rows":[0,1,2,3,4,5,6,7]}"#),
            )
            .unwrap();
        store.append(id, OpKind::Update, &body("{}")).unwrap();
        store
            .append(id, OpKind::View, &body(r#"{"method":"pca"}"#))
            .unwrap();
    }

    fn fingerprint(session: &mut EdaSession) -> (String, u64, String) {
        use sider_core::wire;
        use sider_projection::Method;
        let snap = wire::snapshot_to_json(session).dump();
        let kl = session.information_nats().to_bits();
        let view = session.next_view(&Method::Pca).unwrap();
        (snap, kl, wire::view_to_json(&view).dump())
    }

    /// The in-memory twin of `scripted_history`, built directly.
    fn live_twin() -> EdaSession {
        let mut s = ops::create_session(
            &body(r#"{"dataset":"fig2","seed":7}"#),
            pool(),
            &ops::resolve_dataset,
        )
        .unwrap();
        for (kind, b) in [
            (OpKind::Knowledge, r#"{"kind":"margin"}"#),
            (
                OpKind::Knowledge,
                r#"{"kind":"cluster","rows":[0,1,2,3,4,5,6,7]}"#,
            ),
            (OpKind::Update, "{}"),
            (OpKind::View, r#"{"method":"pca"}"#),
        ] {
            ops::apply(&mut s, kind, &body(b)).unwrap();
        }
        s
    }

    #[test]
    fn recovery_is_byte_identical_to_live_session() {
        let config = temp_store("recover");
        let dir = config.dir.clone();
        {
            let store = Store::open(config.clone()).unwrap();
            scripted_history(&store, 1);
        }
        // Fresh handle, as after a restart.
        let store = Store::open(config).unwrap();
        let recovered = store.recover_all(&pool()).unwrap();
        assert_eq!(recovered.len(), 1);
        let (id, mut session) = recovered.into_iter().next().unwrap();
        assert_eq!(id, 1);
        assert_eq!(fingerprint(&mut session), fingerprint(&mut live_twin()));
        // Recovered IDs never collide with new ones.
        assert_eq!(store.next_session_id().unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_through_checkpoint_is_byte_identical() {
        let config = temp_store("checkpoint");
        let dir = config.dir.clone();
        let store = Store::open(config.clone()).unwrap();
        scripted_history(&store, 1);
        let status = store
            .checkpoint(1, "three-d-four-clusters", 150, 3)
            .unwrap();
        assert_eq!(status.last_lsn, 5);
        assert_eq!(status.wal_records, 0);
        assert!(status.checkpoint_bytes > 0);
        // Post-checkpoint tail.
        store
            .append(
                1,
                OpKind::Knowledge,
                &body(r#"{"kind":"cluster","rows":[40,41,42,43,44]}"#),
            )
            .unwrap();
        store.append(1, OpKind::Update, &body("{}")).unwrap();
        drop(store);

        let store = Store::open(config).unwrap();
        let mut session = store.recover_session(1, pool()).unwrap();

        let mut twin = live_twin();
        ops::apply(
            &mut twin,
            OpKind::Knowledge,
            &body(r#"{"kind":"cluster","rows":[40,41,42,43,44]}"#),
        )
        .unwrap();
        ops::apply(&mut twin, OpKind::Update, &body("{}")).unwrap();
        assert_eq!(fingerprint(&mut session), fingerprint(&mut twin));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_recovers_to_last_complete_op() {
        let config = temp_store("torn");
        let dir = config.dir.clone();
        {
            let store = Store::open(config.clone()).unwrap();
            scripted_history(&store, 1);
        }
        // Simulate a crash mid-append: half a record at the tail.
        let wal = dir.join("sessions/s1/wal.log");
        let torn = wal::frame(br#"{"lsn":6,"op":"update","body":{}}"#);
        let mut bytes = std::fs::read(&wal).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&torn[..torn.len() - 7]);
        std::fs::write(&wal, &bytes).unwrap();

        let store = Store::open(config).unwrap();
        let mut session = store.recover_session(1, pool()).unwrap();
        assert_eq!(fingerprint(&mut session), fingerprint(&mut live_twin()));
        // The tear was physically truncated away…
        assert_eq!(std::fs::metadata(&wal).unwrap().len() as usize, good_len);
        // …and appends continue cleanly after the cut.
        let lsn = store.append(1, OpKind::Update, &body("{}")).unwrap();
        assert_eq!(lsn, 6);
        assert!(!wal::scan(&wal).unwrap().torn);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_counter_survives_deletion_of_all_sessions() {
        let config = temp_store("meta");
        let dir = config.dir.clone();
        let store = Store::open(config.clone()).unwrap();
        store
            .create_session(1, &body(r#"{"dataset":"fig2"}"#))
            .unwrap();
        store
            .create_session(2, &body(r#"{"dataset":"fig2"}"#))
            .unwrap();
        store.remove_session(1).unwrap();
        store.remove_session(2).unwrap();
        drop(store);
        let store = Store::open(config).unwrap();
        assert!(store.recover_all(&pool()).unwrap().is_empty());
        // IDs are never reused, even with every session gone.
        assert_eq!(store.next_session_id().unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_silence() {
        let config = temp_store("corruptcp");
        let dir = config.dir.clone();
        let store = Store::open(config.clone()).unwrap();
        scripted_history(&store, 1);
        store
            .checkpoint(1, "three-d-four-clusters", 150, 3)
            .unwrap();
        drop(store);
        std::fs::write(dir.join("sessions/s1/checkpoint.json"), b"{not json").unwrap();
        let store = Store::open(config).unwrap();
        assert!(matches!(
            store.recover_session(1, pool()),
            Err(StoreError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_session_dirs_are_swept_on_recovery() {
        let config = temp_store("emptydir");
        let dir = config.dir.clone();
        let store = Store::open(config.clone()).unwrap();
        scripted_history(&store, 1);
        // A crash between mkdir and the first acknowledged op, in every
        // flavor: no WAL at all, an empty WAL, and a WAL holding only a
        // torn create frame (>= 8 header bytes, record incomplete) — a
        // server restart must sweep all three, not refuse to boot.
        std::fs::create_dir_all(dir.join("sessions/s7")).unwrap();
        std::fs::create_dir_all(dir.join("sessions/s8")).unwrap();
        std::fs::write(dir.join("sessions/s8/wal.log"), b"").unwrap();
        std::fs::create_dir_all(dir.join("sessions/s9")).unwrap();
        let torn = wal::frame(br#"{"body":{},"lsn":1,"op":"create"}"#);
        std::fs::write(dir.join("sessions/s9/wal.log"), &torn[..torn.len() - 4]).unwrap();
        drop(store);
        let store = Store::open(config).unwrap();
        let recovered = store.recover_all(&pool()).unwrap();
        assert_eq!(recovered.len(), 1);
        for burned in ["s7", "s8", "s9"] {
            assert!(!dir.join("sessions").join(burned).exists(), "{burned}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_append_payload_matches_op_serialization() {
        // The hot append path assembles the record text by hand (to
        // avoid deep-cloning the body); its bytes must stay identical to
        // the canonical `Op::to_payload` serialization or log formats
        // would silently fork.
        let config = temp_store("payload");
        let dir = config.dir.clone();
        let store = Store::open(config).unwrap();
        scripted_history(&store, 1);
        let scan = wal::scan(&dir.join("sessions/s1/wal.log")).unwrap();
        assert_eq!(scan.payloads.len(), 5);
        for payload in &scan.payloads {
            let op = Op::from_payload(payload).unwrap();
            assert_eq!(&op.to_payload(), payload, "{op:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_reports_without_mutating() {
        let config = temp_store("inspect");
        let dir = config.dir.clone();
        let store = Store::open(config).unwrap();
        scripted_history(&store, 1);
        store
            .checkpoint(1, "three-d-four-clusters", 150, 3)
            .unwrap();
        store.append(1, OpKind::Update, &body("{}")).unwrap();
        let report = inspect(&dir).unwrap();
        assert_eq!(report.require_num("next_id").unwrap(), 2.0);
        let sessions = report.require_arr("sessions").unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].require_str("id").unwrap(), "s1");
        assert_eq!(sessions[0].require_num("last_lsn").unwrap(), 6.0);
        assert_eq!(sessions[0].require_num("checkpoint_lsn").unwrap(), 5.0);
        assert_eq!(sessions[0].require_num("wal_records").unwrap(), 1.0);
        assert_eq!(sessions[0].get("torn_tail").unwrap().as_bool(), Some(false));
        assert!(inspect(&dir.join("missing")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_acknowledged_op_is_shipped_in_commit_order() {
        let config = temp_store("shiporder");
        let dir = config.dir.clone();
        let store = Store::open(config).unwrap();
        scripted_history(&store, 1);
        assert_eq!(store.ship_seq(), 5);
        let recs = store.ship_fetch(1, 64).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].op, "create");
        assert_eq!(recs[0].lsn, 1);
        assert_eq!(recs[4].op, "view");
        assert_eq!(recs[4].lsn, 5);
        assert!(recs.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        // Removes are shipped too.
        store.remove_session(1).unwrap();
        let recs = store.ship_fetch(6, 64).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].op, "remove");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reconcile_backfills_a_missing_ship_log() {
        let config = temp_store("shipbackfill");
        let dir = config.dir.clone();
        {
            let store = Store::open(config.clone()).unwrap();
            scripted_history(&store, 1);
        }
        // Simulate a pre-replication dir / crash-lost derived log.
        std::fs::remove_file(dir.join(ship::SHIP_LOG_FILE)).unwrap();
        let store = Store::open(config).unwrap();
        assert_eq!(store.ship_seq(), 0);
        store.recover_all(&pool()).unwrap();
        let recs = store.ship_fetch(1, 64).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(
            recs.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reconcile_ships_checkpoint_when_history_is_compacted() {
        let config = temp_store("shipcp");
        let dir = config.dir.clone();
        {
            let store = Store::open(config.clone()).unwrap();
            scripted_history(&store, 1);
            store
                .checkpoint(1, "three-d-four-clusters", 150, 3)
                .unwrap();
            store.append(1, OpKind::Update, &body("{}")).unwrap();
        }
        // The ops below LSN 5 now exist only folded; a follower starting
        // from scratch must get the fold, then the tail.
        std::fs::remove_file(dir.join(ship::SHIP_LOG_FILE)).unwrap();
        let store = Store::open(config).unwrap();
        store.recover_all(&pool()).unwrap();
        let recs = store.ship_fetch(1, 64).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].op, "checkpoint");
        assert_eq!(recs[0].lsn, 5);
        assert_eq!(recs[1].op, "update");
        assert_eq!(recs[1].lsn, 6);

        // A second store adopts the shipped checkpoint and recovers to a
        // byte-identical session.
        let follower_cfg = temp_store("shipcp_follower");
        let fdir = follower_cfg.dir.clone();
        let follower = Store::open(follower_cfg).unwrap();
        follower.adopt_checkpoint(1, &recs[0].body).unwrap();
        let mut session = follower.recover_session(1, pool()).unwrap();
        ops::apply(&mut session, OpKind::Update, &recs[1].body).unwrap();
        let lsn = follower.append(1, OpKind::Update, &recs[1].body).unwrap();
        assert_eq!(lsn, 6);
        let mut twin = live_twin();
        ops::apply(&mut twin, OpKind::Update, &body("{}")).unwrap();
        assert_eq!(fingerprint(&mut session), fingerprint(&mut twin));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fdir);
    }

    #[test]
    fn reconcile_ships_removes_for_vanished_sessions() {
        let config = temp_store("shiprm");
        let dir = config.dir.clone();
        {
            let store = Store::open(config.clone()).unwrap();
            scripted_history(&store, 1);
        }
        // The session dir vanishes while the ship log still names it
        // (e.g. the remove's ship append failed).
        std::fs::remove_dir_all(dir.join("sessions/s1")).unwrap();
        let store = Store::open(config).unwrap();
        store.recover_all(&pool()).unwrap();
        let last = store.ship_seq();
        let recs = store.ship_fetch(last, 8).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].op, "remove");
        assert_eq!(recs[0].session, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncation_is_reported_not_just_logged() {
        let config = temp_store("tornreport");
        let dir = config.dir.clone();
        {
            let store = Store::open(config.clone()).unwrap();
            scripted_history(&store, 1);
        }
        let wal = dir.join("sessions/s1/wal.log");
        let good_len = std::fs::metadata(&wal).unwrap().len();
        let torn = wal::frame(br#"{"lsn":6,"op":"update","body":{}}"#);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() - 7]);
        std::fs::write(&wal, &bytes).unwrap();

        // Offline inspect sees the tear before any recovery runs.
        let report = inspect(&dir).unwrap();
        let row = &report.require_arr("sessions").unwrap()[0];
        assert_eq!(row.get("torn_tail").unwrap().as_bool(), Some(true));
        assert_eq!(
            row.require_num("torn_tail_offset").unwrap(),
            good_len as f64
        );
        assert_eq!(
            row.require_num("torn_tail_lost_bytes").unwrap(),
            (torn.len() - 7) as f64
        );

        let store = Store::open(config).unwrap();
        store.recover_all(&pool()).unwrap();
        let events = store.recovery_report();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].session, 1);
        assert_eq!(events[0].offset, good_len);
        assert_eq!(events[0].lost_bytes, (torn.len() - 7) as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse("16").unwrap(), FsyncPolicy::EveryN(16));
        assert!(FsyncPolicy::parse("0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        for p in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::EveryN(8),
        ] {
            assert_eq!(FsyncPolicy::parse(&p.as_string()).unwrap(), p);
        }
    }
}
