//! The logged operation vocabulary and its **single apply path**.
//!
//! Durability by replay only works if the bytes in the log are applied to
//! a session in exactly one way: the HTTP handler that mutated the live
//! session and the recovery path that rebuilds it after a restart must be
//! the *same code*, or the two will drift and recovery will silently
//! reconstruct a different session. This module is that code:
//! `sider_server`'s mutating endpoints parse a request into an [`Op`],
//! call [`apply`], log the op, and build the response from the returned
//! [`Applied`]; recovery reads ops back from the log and calls the same
//! [`apply`].
//!
//! Note that `view` **is** a logged, mutating operation even though it
//! looks like a read: computing a view draws a fresh background sample
//! from the session RNG, so two sessions that served different view
//! sequences are in different states. Replaying views (and discarding
//! their output) is what makes a recovered session's *next* view
//! byte-identical to the one a never-restarted server would produce.

use sider_core::wire;
use sider_core::{CoreError, EdaSession, ViewState};
use sider_data::Dataset;
use sider_json::Json;
use sider_par::ThreadPool;
use sider_projection::{IcaOpts, Method};
use std::io::BufReader;
use std::sync::Arc;

/// Most ICA restarts one `view` op may ask for — each restart is a full
/// FastICA run, so the cap bounds how long a single request can hold a
/// pool thread (the paper's experiments use single-digit counts).
pub const MAX_ICA_RESTARTS: usize = 64;

/// The kinds of state-changing operations a session can absorb. One log
/// record per op; the `create` op is always the first record of a
/// session's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Create the session: dataset ref (builtin name) or inline CSV, plus
    /// the RNG seed.
    Create,
    /// Add one knowledge statement (margin / one-cluster / cluster / twod).
    Knowledge,
    /// Refit the background (warm by default, `"cold": true` from scratch).
    Update,
    /// Drop the most recent knowledge statement.
    Undo,
    /// Compute the next most-informative view (advances the session RNG).
    View,
    /// Replay a wire-format knowledge snapshot into the session.
    Snapshot,
}

impl OpKind {
    /// The wire tag stored in log records.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Knowledge => "knowledge",
            OpKind::Update => "update",
            OpKind::Undo => "undo",
            OpKind::View => "view",
            OpKind::Snapshot => "snapshot",
        }
    }

    /// Parse a wire tag back.
    pub fn parse(s: &str) -> Option<OpKind> {
        Some(match s {
            "create" => OpKind::Create,
            "knowledge" => OpKind::Knowledge,
            "update" => OpKind::Update,
            "undo" => OpKind::Undo,
            "view" => OpKind::View,
            "snapshot" => OpKind::Snapshot,
            _ => return None,
        })
    }
}

/// One logged operation: a log sequence number, the kind, and the JSON
/// request body it was applied with (canonicalized by `sider_json`'s
/// deterministic serializer, so identical request histories produce
/// identical log bytes).
#[derive(Debug, Clone)]
pub struct Op {
    /// Position in the session's history (the create op is LSN 1).
    pub lsn: u64,
    /// What the operation did.
    pub kind: OpKind,
    /// The request body it was applied with.
    pub body: Json,
}

impl Op {
    /// Serialize into a WAL record payload.
    pub fn to_payload(&self) -> Vec<u8> {
        Json::obj([
            ("lsn", Json::from(self.lsn)),
            ("op", Json::from(self.kind.as_str())),
            ("body", self.body.clone()),
        ])
        .dump()
        .into_bytes()
    }

    /// Parse a WAL record payload back into an op.
    pub fn from_payload(payload: &[u8]) -> Result<Op, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("non-UTF-8 record: {e}"))?;
        let json = Json::parse(text)?;
        Op::from_json(&json)
    }

    /// Parse the JSON form of a record (shared with checkpoint documents).
    pub fn from_json(json: &Json) -> Result<Op, String> {
        let lsn = json.require_num("lsn")?;
        if !(lsn.is_finite() && lsn >= 1.0 && lsn.fract() == 0.0) {
            return Err(format!("bad record lsn: {lsn}"));
        }
        let kind = OpKind::parse(json.require_str("op")?)
            .ok_or_else(|| format!("unknown op kind {:?}", json.require_str("op")))?;
        let body = json.get("body").cloned().unwrap_or(Json::Null);
        Ok(Op {
            lsn: lsn as u64,
            kind,
            body,
        })
    }

    /// The JSON form of a record (shared with checkpoint documents).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("lsn", Json::from(self.lsn)),
            ("op", Json::from(self.kind.as_str())),
            ("body", self.body.clone()),
        ])
    }
}

/// Why an op could not be applied.
#[derive(Debug)]
pub enum OpError {
    /// The op body is invalid (an HTTP 400).
    Bad(String),
    /// The op conflicts with session state, e.g. undo with no knowledge
    /// (an HTTP 409).
    Conflict(String),
    /// The session itself rejected or failed the op.
    Core(CoreError),
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::Bad(m) => write!(f, "bad op: {m}"),
            OpError::Conflict(m) => write!(f, "conflict: {m}"),
            OpError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl From<CoreError> for OpError {
    fn from(e: CoreError) -> Self {
        OpError::Core(e)
    }
}

fn bad(msg: impl Into<String>) -> OpError {
    OpError::Bad(msg.into())
}

/// What applying an op produced — everything a response needs beyond the
/// session state itself. Recovery discards these.
#[derive(Debug)]
pub enum Applied {
    /// The knowledge record that was added, serialized.
    Knowledge {
        /// `wire::knowledge_to_json` of the new statement.
        added: Json,
    },
    /// The refit outcome.
    Update {
        /// `wire::report_to_json` of the convergence report.
        report: Json,
        /// Whether the warm path was taken.
        was_warm: bool,
        /// `wire::refresh_stats_to_json` of the refresh counters.
        refresh: Option<Json>,
    },
    /// The knowledge record that was removed, serialized.
    Undo {
        /// `wire::knowledge_to_json` of the dropped statement.
        removed: Json,
    },
    /// The computed view.
    View {
        /// The full view state (projection, projected data + background).
        view: Box<ViewState>,
    },
    /// Snapshot replay outcome.
    Snapshot {
        /// Number of statements applied.
        applied: usize,
    },
}

/// Validate a collection index ([`Json::as_index`]: exact non-negative
/// integer ≤ `u32::MAX`) — the one bound shared by every row/class field,
/// so no hand-rolled copy can silently saturate with `as usize`.
pub fn index_of(v: &Json, what: &str) -> Result<usize, OpError> {
    v.as_index()
        .ok_or_else(|| bad(format!("'{what}' must be a non-negative integer")))
}

/// Validate an array of collection indices.
pub fn index_arr(v: &Json, what: &str) -> Result<Vec<usize>, OpError> {
    v.as_arr()
        .ok_or_else(|| bad(format!("'{what}' must be an array")))?
        .iter()
        .map(|x| index_of(x, what))
        .collect()
}

/// Resolve the dataset of a create op: `{"dataset": "fig2"}` for the
/// paper's builtins, or `{"name": …, "csv": "a,b\n1,2\n…"}` for inline
/// data.
pub fn resolve_dataset(body: &Json) -> Result<Dataset, String> {
    if let Some(csv) = body.get("csv") {
        let text = csv.as_str().ok_or("'csv' must be a string")?;
        let (header, matrix) = sider_data::csv::read_matrix(BufReader::new(text.as_bytes()))
            .map_err(|e| format!("bad csv: {e}"))?;
        let name = body
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("uploaded")
            .to_string();
        let mut ds = Dataset::unlabeled(name, matrix);
        ds.column_names = header;
        return Ok(ds);
    }
    match body.get("dataset").and_then(Json::as_str) {
        Some("fig2") => Ok(sider_data::synthetic::three_d_four_clusters(2018)),
        Some("xhat5") => Ok(sider_data::synthetic::xhat5(1000, 42)),
        Some("bnc") => Ok(sider_data::bnc::bnc_like_corpus(
            &sider_data::bnc::BncOpts::default(),
            2018,
        )),
        Some("segmentation") => Ok(sider_data::segmentation::segmentation_like(
            &sider_data::segmentation::SegmentationOpts::default(),
            2018,
        )),
        Some(other) => Err(format!(
            "unknown dataset '{other}' (fig2|xhat5|bnc|segmentation, or inline 'csv')"
        )),
        None => Err("need 'dataset' (builtin name) or 'csv'".into()),
    }
}

/// The RNG seed of a create op (default 7). Validated like the row
/// indices: a plain `as u64` would saturate negative seeds to 0 and
/// truncate fractions, silently collapsing distinct client inputs onto
/// the same RNG stream.
pub fn parse_seed(body: &Json) -> Result<u64, String> {
    match body.get("seed") {
        None => Ok(7),
        Some(v) => v
            .as_num()
            .filter(|x| x.fract() == 0.0 && *x >= 0.0 && *x < u64::MAX as f64)
            .map(|x| x as u64)
            .ok_or_else(|| "'seed' must be a non-negative integer below 2^64".to_string()),
    }
}

/// A pluggable dataset source for replay — the server uses
/// [`resolve_dataset`]; benchmarks inject synthetic matrices.
pub type DatasetResolver<'a> = &'a dyn Fn(&Json) -> Result<Dataset, String>;

/// Apply a create op: resolve the dataset through `resolver`, parse the
/// seed, and construct the session on `pool`. This is the replay twin of
/// the server's session creation; both must construct byte-identically.
pub fn create_session(
    body: &Json,
    pool: Arc<ThreadPool>,
    resolver: DatasetResolver<'_>,
) -> Result<EdaSession, OpError> {
    let dataset = resolver(body).map_err(bad)?;
    let seed = parse_seed(body).map_err(bad)?;
    Ok(EdaSession::with_pool(dataset, seed, pool)?)
}

/// Apply one non-create op to a session. Errors leave the session
/// unmodified (each branch validates before mutating, and the snapshot
/// branch replays into a scratch clone), so a rejected request never
/// needs to be logged or undone.
pub fn apply(session: &mut EdaSession, kind: OpKind, body: &Json) -> Result<Applied, OpError> {
    match kind {
        OpKind::Create => Err(bad("create can only start a session history")),
        OpKind::Knowledge => apply_knowledge(session, body),
        OpKind::Update => apply_update(session, body),
        OpKind::Undo => {
            let removed = session
                .undo_last_knowledge()
                .map(|r| wire::knowledge_to_json(&r))
                .ok_or_else(|| OpError::Conflict("nothing to undo".into()))?;
            Ok(Applied::Undo { removed })
        }
        OpKind::View => {
            let method = parse_method(body)?;
            let view = session.next_view(&method)?;
            Ok(Applied::View {
                view: Box::new(view),
            })
        }
        OpKind::Snapshot => {
            let applied = wire::snapshot_from_json(session, body)?;
            Ok(Applied::Snapshot { applied })
        }
    }
}

/// `{"kind": "margin" | "one-cluster" | "cluster" | "twod",
/// "rows": [...], "axes": [[...],[...]]}` — rows for cluster/twod, axes
/// for twod only. Alternatively `{"kind":"cluster","label_set":0,
/// "class":2}` marks a predefined class as the selection.
fn apply_knowledge(session: &mut EdaSession, body: &Json) -> Result<Applied, OpError> {
    let kind = body.require_str("kind").map_err(bad)?;
    let rows = |what: &str| -> Result<Vec<usize>, OpError> {
        if let (Some(set), Some(class)) = (body.get("label_set"), body.get("class")) {
            let set = index_of(set, "label_set")?;
            let class = index_of(class, "class")?;
            return Ok(session.select_class(set, class)?);
        }
        let raw = body
            .get("rows")
            .ok_or_else(|| bad(format!("'{what}' knowledge needs 'rows'")))?;
        index_arr(raw, "rows")
    };
    match kind {
        "margin" => session.add_margin_constraints()?,
        "one-cluster" => session.add_one_cluster_constraint()?,
        "cluster" => {
            let rows = rows("cluster")?;
            session.add_cluster_constraint(&rows)?;
        }
        "twod" => {
            let axes = wire::matrix_from_json(
                body.get("axes")
                    .ok_or_else(|| bad("'twod' knowledge needs 'axes'"))?,
            )?;
            let rows = rows("twod")?;
            session.add_twod_constraint(&rows, &axes)?;
        }
        other => {
            return Err(bad(format!(
                "unknown knowledge kind '{other}' (margin|one-cluster|cluster|twod)"
            )))
        }
    }
    let added = session
        .knowledge()
        .last()
        .map(wire::knowledge_to_json)
        .unwrap_or(Json::Null);
    Ok(Applied::Knowledge { added })
}

/// Refit the background with all accumulated constraints — warm after the
/// first call. Body: fit options (all fields optional) plus the strict
/// boolean `cold` (`{"cold": 1}` must not silently take the warm path).
fn apply_update(session: &mut EdaSession, body: &Json) -> Result<Applied, OpError> {
    let opts = wire::fit_opts_from_json(body)?;
    let cold = match body.get("cold") {
        None => false,
        Some(v) => v.as_bool().ok_or_else(|| bad("'cold' must be a boolean"))?,
    };
    let warm_before = session.has_warm_solver();
    let report = if cold {
        session.refit_cold(&opts)?
    } else {
        session.update_background(&opts)?
    };
    Ok(Applied::Update {
        report: wire::report_to_json(&report),
        was_warm: warm_before && !cold,
        refresh: session
            .last_refresh_stats()
            .map(|s| wire::refresh_stats_to_json(&s)),
    })
}

/// Parse the projection method of a view op: `{"method": "pca"|"ica",
/// "restarts": 4}` (`restarts` is ICA-only, bounded to
/// 1..=[`MAX_ICA_RESTARTS`] so one request cannot pin a pool thread
/// indefinitely).
pub fn parse_method(body: &Json) -> Result<Method, OpError> {
    let method = match body.get("method") {
        None => "pca",
        Some(v) => v.as_str().ok_or_else(|| bad("'method' must be a string"))?,
    };
    match method {
        "pca" => Ok(Method::Pca),
        "ica" => {
            let mut opts = IcaOpts::default();
            if let Some(r) = body.get("restarts") {
                opts.restarts = r
                    .as_index()
                    .filter(|n| (1..=MAX_ICA_RESTARTS).contains(n))
                    .ok_or_else(|| {
                        bad(format!(
                            "'restarts' must be an integer in 1..={MAX_ICA_RESTARTS}"
                        ))
                    })?;
            }
            Ok(Method::Ica(opts))
        }
        other => Err(bad(format!("unknown method '{other}' (pca|ica)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> EdaSession {
        EdaSession::with_pool(
            sider_data::synthetic::three_d_four_clusters(2018),
            7,
            Arc::new(ThreadPool::new(1)),
        )
        .unwrap()
    }

    fn body(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn op_payload_roundtrips() {
        let op = Op {
            lsn: 42,
            kind: OpKind::Knowledge,
            body: body(r#"{"kind":"cluster","rows":[0,1,2]}"#),
        };
        let back = Op::from_payload(&op.to_payload()).unwrap();
        assert_eq!(back.lsn, 42);
        assert_eq!(back.kind, OpKind::Knowledge);
        assert_eq!(back.body.dump(), op.body.dump());
        for kind in [
            OpKind::Create,
            OpKind::Knowledge,
            OpKind::Update,
            OpKind::Undo,
            OpKind::View,
            OpKind::Snapshot,
        ] {
            assert_eq!(OpKind::parse(kind.as_str()), Some(kind));
        }
    }

    #[test]
    fn bad_payloads_rejected() {
        assert!(Op::from_payload(b"\xff\xfe").is_err());
        assert!(Op::from_payload(b"{}").is_err());
        assert!(Op::from_payload(br#"{"lsn":0,"op":"undo"}"#).is_err());
        assert!(Op::from_payload(br#"{"lsn":1.5,"op":"undo"}"#).is_err());
        assert!(Op::from_payload(br#"{"lsn":1,"op":"frobnicate"}"#).is_err());
    }

    #[test]
    fn apply_drives_full_loop() {
        let mut s = session();
        let added = apply(&mut s, OpKind::Knowledge, &body(r#"{"kind":"margin"}"#)).unwrap();
        assert!(matches!(added, Applied::Knowledge { .. }));
        let updated = apply(&mut s, OpKind::Update, &body("{}")).unwrap();
        match updated {
            Applied::Update {
                was_warm, refresh, ..
            } => {
                assert!(!was_warm);
                assert!(refresh.is_some());
            }
            other => panic!("expected update, got {other:?}"),
        }
        let viewed = apply(&mut s, OpKind::View, &body(r#"{"method":"pca"}"#)).unwrap();
        match viewed {
            Applied::View { view } => assert_eq!(view.projected_data.shape(), (150, 2)),
            other => panic!("expected view, got {other:?}"),
        }
        let undone = apply(&mut s, OpKind::Undo, &body("{}")).unwrap();
        assert!(matches!(undone, Applied::Undo { .. }));
        assert!(matches!(
            apply(&mut s, OpKind::Undo, &body("{}")),
            Err(OpError::Conflict(_))
        ));
    }

    #[test]
    fn errors_leave_session_unmodified() {
        let mut s = session();
        for (kind, b) in [
            (OpKind::Knowledge, r#"{"kind":"vibes"}"#),
            (OpKind::Knowledge, r#"{"kind":"cluster","rows":[9999]}"#),
            (OpKind::Knowledge, r#"{"kind":"twod","rows":[0]}"#),
            (OpKind::Update, r#"{"cold":1}"#),
            (OpKind::View, r#"{"method":"umap"}"#),
            (OpKind::View, r#"{"method":"ica","restarts":0}"#),
            (OpKind::Snapshot, r#"{"format":"x"}"#),
            (OpKind::Create, r#"{"dataset":"fig2"}"#),
        ] {
            assert!(apply(&mut s, kind, &body(b)).is_err(), "{b}");
        }
        assert_eq!(s.n_constraints(), 0);
        assert!(!s.is_dirty());
    }

    #[test]
    fn create_matches_server_validation() {
        let pool = Arc::new(ThreadPool::new(1));
        let resolver: DatasetResolver<'_> = &resolve_dataset;
        let s = create_session(
            &body(r#"{"dataset":"fig2","seed":3}"#),
            pool.clone(),
            resolver,
        )
        .unwrap();
        assert_eq!(s.dataset().n(), 150);
        for b in [
            r#"{"dataset":"mars"}"#,
            r#"{}"#,
            r#"{"dataset":"fig2","seed":-1}"#,
            r#"{"dataset":"fig2","seed":0.5}"#,
            r#"{"csv": 3}"#,
        ] {
            assert!(
                matches!(
                    create_session(&body(b), pool.clone(), resolver),
                    Err(OpError::Bad(_))
                ),
                "{b}"
            );
        }
    }
}
