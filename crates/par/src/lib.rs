//! Scoped thread pool and deterministic data-parallel primitives.
//!
//! The interactive loop re-fits the background distribution, re-samples
//! surrogate datasets and re-runs projection pursuit between every feedback
//! round. Those hot paths decompose into embarrassingly parallel per-class
//! and per-row work, but the workspace builds offline with zero external
//! dependencies, so this crate provides the missing piece: a small,
//! std-only [`ThreadPool`] with the data-parallel operations the rest of
//! the stack needs ([`ThreadPool::par_map`], [`ThreadPool::par_chunks_mut`],
//! [`ThreadPool::for_each_index`], [`ThreadPool::map_reduce`]).
//!
//! # Determinism contract
//!
//! Every primitive is **bit-identical at any thread count**:
//!
//! * `par_map` / `for_each_index` / `par_chunks_mut` assign each result to
//!   a fixed slot keyed by item index — scheduling can reorder *execution*
//!   but never *placement*;
//! * [`ThreadPool::map_reduce`] carves the index space into chunks whose
//!   boundaries depend only on the caller-supplied chunk length (never on
//!   the thread count) and folds the per-chunk results **in chunk order**
//!   on the calling thread, so floating-point accumulation order is fixed.
//!
//! Callers layer their own determinism on top (e.g. per-row counter-seeded
//! RNG substreams for sampling) so that `SIDER_THREADS=1` and
//! `SIDER_THREADS=64` produce the same bytes.
//!
//! # Pool model
//!
//! [`ThreadPool::new(k)`](ThreadPool::new) spawns `k − 1` persistent
//! workers parked on a condvar; the dispatching thread always participates
//! as the `k`-th executor, so a pool of size 1 spawns nothing and runs
//! everything inline (making the serial pool literally the serial code
//! path). Worker threads never outlive a dispatch: [`ThreadPool::run`]
//! blocks until every worker has finished the current job, which is what
//! makes it safe to hand workers closures borrowing the caller's stack
//! (a *scoped* pool). Nested dispatch from inside a worker runs inline,
//! so library code can parallelize unconditionally without deadlocking.
//!
//! Pool size comes from the `SIDER_THREADS` environment variable
//! ([`ThreadPool::from_env`]), defaulting to the machine's available
//! parallelism.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// Environment variable controlling the default pool size.
pub const THREADS_ENV_VAR: &str = "SIDER_THREADS";

/// Upper bound on the pool size (a guard against typos like
/// `SIDER_THREADS=10000`, not a tuning parameter).
const MAX_THREADS: usize = 256;

/// Below this many estimated flops, [`ThreadPool::gated`] judges the
/// condvar wake/join handshake more expensive than the arithmetic and
/// routes the call to the shared serial pool.
const DISPATCH_MIN_FLOPS: usize = 1 << 17;

/// The process-wide serial pool handed out by [`ThreadPool::gated`]
/// (no workers, so every operation runs inline on the caller).
fn serial_singleton() -> &'static ThreadPool {
    static SERIAL: std::sync::OnceLock<ThreadPool> = std::sync::OnceLock::new();
    SERIAL.get_or_init(ThreadPool::serial)
}

thread_local! {
    /// Set while the current thread executes inside a pool job; nested
    /// dispatch runs inline instead of deadlocking on the job slot.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Type-erased pointer to the job closure of the active dispatch. Only
/// dereferenced between job publication and the completion handshake, while
/// [`ThreadPool::run`] keeps the referent alive on the dispatcher's stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared execution is the whole point) and
// `run` blocks until every worker is done with the pointer, so sending the
// pointer to worker threads never outlives the borrow it was cast from.
unsafe impl Send for JobPtr {}

/// State shared between the dispatcher and the workers.
struct PoolState {
    /// Monotonic job counter; workers run one job per increment.
    epoch: u64,
    /// The active job, if any.
    job: Option<JobPtr>,
    /// Workers still executing the active job.
    active: usize,
    /// Set by [`ThreadPool::drop`]; workers exit their loop.
    shutdown: bool,
    /// A worker panicked while executing the active job.
    worker_panicked: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch.
    work_ready: Condvar,
    /// The dispatcher waits here for `active == 0`.
    job_done: Condvar,
}

/// A scoped thread pool of fixed size.
///
/// See the crate docs for the execution and determinism model. The pool is
/// `Send + Sync`; sessions typically hold it in an `Arc` and thread a
/// reference through fit → sample → project.
pub struct ThreadPool {
    shared: std::sync::Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes dispatches from different threads onto the single job slot.
    dispatch: Mutex<()>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Pool executing on `threads` threads total (the dispatcher counts as
    /// one, so `threads − 1` workers are spawned; `0` is clamped to `1`).
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
                worker_panicked: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|k| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sider-par-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            dispatch: Mutex::new(()),
            threads,
        }
    }

    /// Pool sized from the `SIDER_THREADS` environment variable, falling
    /// back to the machine's available parallelism (≥ 1).
    pub fn from_env() -> Self {
        Self::new(threads_from_env())
    }

    /// The single-threaded pool: no workers, every operation runs inline on
    /// the caller. Constructing one is cheap (no threads are spawned), and
    /// by the determinism contract it produces exactly the same results as
    /// any larger pool.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Total execution threads (dispatcher included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Dispatch-or-inline gate: returns `self` when `estimated_flops` of
    /// arithmetic is large enough to amortize the all-worker wake/join
    /// handshake, and the shared serial pool (inline execution, zero
    /// dispatch cost) otherwise. By the determinism contract the results
    /// are identical either way — this only decides who does the work, so
    /// hot paths can call it unconditionally:
    ///
    /// ```
    /// # use sider_par::ThreadPool;
    /// # let pool = ThreadPool::new(4);
    /// # let (n, d) = (100usize, 5usize);
    /// let pool = pool.gated(n * d * d); // tiny → runs inline
    /// ```
    pub fn gated(&self, estimated_flops: usize) -> &ThreadPool {
        if self.workers.is_empty() || estimated_flops < DISPATCH_MIN_FLOPS {
            serial_singleton()
        } else {
            self
        }
    }

    /// Execute `job` once on every pool thread simultaneously (the
    /// dispatcher included) and return when all of them finish. `job`
    /// typically claims work items off a shared atomic counter.
    ///
    /// Runs inline when the pool is serial or when called from inside a
    /// pool job (nested dispatch).
    pub fn run(&self, job: &(dyn Fn() + Sync)) {
        if self.workers.is_empty() || IN_POOL_JOB.with(|f| f.get()) {
            job();
            return;
        }
        let _dispatch = lock_ignoring_poison(&self.dispatch);
        // SAFETY: the lifetime is erased only for the duration of this
        // dispatch — `run` waits for `active == 0` and clears the slot
        // before returning, so no worker can observe the pointer after the
        // borrow ends.
        let job_static: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(job) };
        {
            let mut st = lock_ignoring_poison(&self.shared.state);
            st.job = Some(JobPtr(job_static as *const _));
            st.epoch += 1;
            st.active = self.workers.len();
            st.worker_panicked = false;
        }
        self.shared.work_ready.notify_all();

        // The dispatcher participates; a panic here must still wait for the
        // workers (they hold the job pointer) before unwinding. The
        // in-job marker makes nested dispatch from inside `job` run inline
        // (the dispatch mutex is not reentrant).
        IN_POOL_JOB.with(|f| f.set(true));
        let caller_result = catch_unwind(AssertUnwindSafe(job));
        IN_POOL_JOB.with(|f| f.set(false));

        let worker_panicked = {
            let mut st = lock_ignoring_poison(&self.shared.state);
            while st.active > 0 {
                st = self
                    .shared
                    .job_done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.job = None;
            st.worker_panicked
        };
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "a pool worker panicked during the job");
    }

    /// Apply `f` to every index in `0..n`, distributing contiguous chunks
    /// of indices across the pool. Placement of side effects is up to `f`;
    /// execution order across chunks is unspecified.
    pub fn for_each_index(&self, n: usize, f: impl Fn(usize) + Sync) {
        if n == 0 {
            return;
        }
        let chunk = default_chunk(n, self.threads);
        // One chunk of work cannot be split: skip the dispatch handshake.
        if self.workers.is_empty() || n <= chunk {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        self.run(&|| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for i in start..(start + chunk).min(n) {
                f(i);
            }
        });
    }

    /// Map `f` over `items`, returning results in item order regardless of
    /// scheduling.
    pub fn par_map<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let chunk = default_chunk(n, self.threads);
        // One chunk of work cannot be split: skip the dispatch handshake.
        if self.workers.is_empty() || n <= chunk {
            return items.iter().map(&f).collect();
        }
        let slots: Vec<Mutex<Vec<R>>> = items
            .chunks(chunk)
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let next = AtomicUsize::new(0);
        self.run(&|| loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= slots.len() {
                break;
            }
            let start = k * chunk;
            let produced: Vec<R> = items[start..(start + chunk).min(n)]
                .iter()
                .map(&f)
                .collect();
            *slots[k].lock().unwrap() = produced;
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            out.extend(slot.into_inner().unwrap());
        }
        out
    }

    /// Split `data` into consecutive chunks of `chunk_len` elements (the
    /// last one may be shorter) and apply `f(chunk_index, chunk)` to each in
    /// parallel. Chunk boundaries depend only on `chunk_len`, so writes land
    /// at thread-count-independent positions.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
        if data.is_empty() {
            return;
        }
        // One chunk of work cannot be split: skip the dispatch handshake.
        if self.workers.is_empty() || data.len() <= chunk_len {
            for (k, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(k, chunk);
            }
            return;
        }
        // Pre-split into disjoint borrows so workers need no unsafe access:
        // each chunk sits behind its own (uncontended) mutex.
        let chunks: Vec<Mutex<&mut [T]>> = data.chunks_mut(chunk_len).map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        self.run(&|| loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= chunks.len() {
                break;
            }
            f(k, &mut chunks[k].lock().unwrap());
        });
    }

    /// Deterministic indexed map-reduce: the index space `0..n` is carved
    /// into chunks of `chunk_len` (boundaries independent of the thread
    /// count), `map` produces one value per chunk range in parallel, and
    /// the values are folded with `reduce` **in chunk order** on the
    /// calling thread — so floating-point reductions are bit-identical at
    /// any pool size. Returns `None` when `n == 0`.
    pub fn map_reduce<R: Send>(
        &self,
        n: usize,
        chunk_len: usize,
        map: impl Fn(std::ops::Range<usize>) -> R + Sync,
        mut reduce: impl FnMut(R, R) -> R,
    ) -> Option<R> {
        assert!(chunk_len > 0, "map_reduce: chunk_len must be positive");
        if n == 0 {
            return None;
        }
        let ranges: Vec<std::ops::Range<usize>> = (0..n)
            .step_by(chunk_len)
            .map(|start| start..(start + chunk_len).min(n))
            .collect();
        let partials = self.par_map(&ranges, |r| map(r.clone()));
        let mut iter = partials.into_iter();
        let first = iter.next()?;
        Some(iter.fold(first, &mut reduce))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock_ignoring_poison(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock_ignoring_poison(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    Some(job) if st.epoch != seen_epoch => {
                        seen_epoch = st.epoch;
                        break job;
                    }
                    _ => {}
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        IN_POOL_JOB.with(|f| f.set(true));
        // SAFETY: `run` keeps the closure alive until `active` drops to 0,
        // which only happens after this call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() }));
        IN_POOL_JOB.with(|f| f.set(false));
        let mut st = lock_ignoring_poison(&shared.state);
        if result.is_err() {
            st.worker_panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.job_done.notify_one();
        }
    }
}

/// Lock a mutex, ignoring poisoning: pool state transitions are panic-safe
/// (worker panics are caught and counted; `active` is decremented on every
/// path), so a poisoned lock only records that some job panicked earlier —
/// which `run` already reports separately.
fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Pool size from `SIDER_THREADS`, defaulting to available parallelism.
/// Unparsable or zero values fall back to the default.
pub fn threads_from_env() -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var(THREADS_ENV_VAR) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default,
        },
        Err(_) => default,
    }
}

/// Work-claiming granularity: a few chunks per thread for load balance,
/// never below one item.
fn default_chunk(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1) * 4).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_spawns_no_workers_and_runs_inline() {
        let pool = ThreadPool::serial();
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let mut seen = None;
        pool.run(&|| {
            // Single closure invocation, on the calling thread.
        });
        pool.for_each_index(3, |_| {});
        let ran_on = Mutex::new(Vec::new());
        pool.par_chunks_mut(&mut [0u8; 4][..], 2, |_, _| {
            ran_on.lock().unwrap().push(std::thread::current().id());
        });
        for id in ran_on.into_inner().unwrap() {
            seen = Some(id);
            assert_eq!(id, caller);
        }
        assert!(seen.is_some());
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let items: Vec<u64> = (0..1000).collect();
            let out = pool.par_map(&items, |&x| x * 3 + 1);
            assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_index_visits_every_index_once() {
        let pool = ThreadPool::new(4);
        let counts: Vec<AtomicU64> = (0..777).map(|_| AtomicU64::new(0)).collect();
        pool.for_each_index(counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0usize; 103];
        pool.par_chunks_mut(&mut data, 10, |k, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = k * 10 + off;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn map_reduce_is_bit_identical_across_thread_counts() {
        // Values chosen so that summation order visibly matters in f64.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f64 * 1e-3 + 1e12 * ((i % 7) as f64))
            .collect();
        let sum_with = |threads: usize| {
            let pool = ThreadPool::new(threads);
            pool.map_reduce(
                xs.len(),
                64,
                |r| r.map(|i| xs[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let s1 = sum_with(1);
        assert_eq!(s1.to_bits(), sum_with(2).to_bits());
        assert_eq!(s1.to_bits(), sum_with(5).to_bits());
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let pool = ThreadPool::new(2);
        assert!(pool.map_reduce(0, 8, |_| 0.0f64, |a, b| a + b).is_none());
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        pool.for_each_index(8, |_| {
            // Nested use of the same pool from inside a job.
            pool.for_each_index(8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let pool = ThreadPool::new(3);
        for round in 0..200 {
            let items: Vec<usize> = (0..round % 17).collect();
            let out = pool.par_map(&items, |&x| x + 1);
            assert_eq!(out.len(), items.len());
        }
    }

    #[test]
    fn threads_from_env_parses_and_falls_back() {
        // NOTE: env mutation is process-global; this is the only test that
        // touches SIDER_THREADS.
        std::env::set_var(THREADS_ENV_VAR, "3");
        assert_eq!(threads_from_env(), 3);
        std::env::set_var(THREADS_ENV_VAR, "not-a-number");
        let fallback = threads_from_env();
        assert!(fallback >= 1);
        std::env::set_var(THREADS_ENV_VAR, "0");
        assert_eq!(threads_from_env(), fallback);
        std::env::remove_var(THREADS_ENV_VAR);
        assert_eq!(threads_from_env(), fallback);
        let pool = ThreadPool::from_env();
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn worker_panic_is_reported() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_index(64, |i| {
                if i == 63 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a panicked job.
        let out = pool.par_map(&[1, 2, 3], |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }
}
