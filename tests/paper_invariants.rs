//! Quantitative invariants lifted directly from the paper's text:
//! analytic fixed points (Eq. 12/13), the whitening semantics of margin
//! and 1-cluster constraints (§II-A), the harmonic convergence rate
//! (Fig. 5b), and the sampling contract of the background distribution.

use sider::data::synthetic::adversarial_toy;
use sider::linalg::Matrix;
use sider::maxent::constraint::{margin_constraints, one_cluster_constraints};
use sider::maxent::{Constraint, FitOpts, RowSet, Solver};
use sider::stats::Rng;

fn axis_constraints(data: &Matrix, rows: &[usize]) -> Vec<Constraint> {
    let rows = RowSet::from_indices(rows);
    let e1 = vec![1.0, 0.0];
    let e2 = vec![0.0, 1.0];
    vec![
        Constraint::linear(data, rows.clone(), e1.clone(), "l1").unwrap(),
        Constraint::quadratic(data, rows.clone(), e1, "q1").unwrap(),
        Constraint::linear(data, rows.clone(), e2.clone(), "l2").unwrap(),
        Constraint::quadratic(data, rows, e2, "q2").unwrap(),
    ]
}

#[test]
fn eq12_case_a_analytic_fixed_point() {
    let data = adversarial_toy();
    let mut solver = Solver::new(&data, axis_constraints(&data, &[0, 2])).unwrap();
    let report = solver.fit(&FitOpts::default());
    assert!(report.converged);
    let p0 = solver.params_for_row(0);
    let p1 = solver.params_for_row(1);
    let p2 = solver.params_for_row(2);
    // m1 = m3 = (1/2, 0); m2 = (0,0).
    assert!((p0.m[0] - 0.5).abs() < 1e-8 && p0.m[1].abs() < 1e-8);
    assert!((p2.m[0] - 0.5).abs() < 1e-8 && p2.m[1].abs() < 1e-8);
    assert!(p1.m.iter().all(|&v| v.abs() < 1e-12));
    // Σ1 = Σ3 = diag(1/4, 0); Σ2 = I.
    assert!((p0.sigma[(0, 0)] - 0.25).abs() < 1e-8);
    assert!(p0.sigma[(1, 1)].abs() < 1e-8);
    assert!(p1.sigma.max_abs_diff(&Matrix::identity(2)) < 1e-12);
}

#[test]
fn eq13_case_b_harmonic_convergence() {
    let data = adversarial_toy();
    let mut cs = axis_constraints(&data, &[0, 2]);
    cs.extend(axis_constraints(&data, &[1, 2]));
    let mut solver = Solver::new(&data, cs).unwrap();
    let mut values = Vec::new();
    for _ in 0..512 {
        solver.sweep(1e12);
        values.push(solver.params_for_row(0).sigma[(0, 0)]);
    }
    // Means approach (1,0), (0,1), (0,0).
    assert!((solver.params_for_row(0).m[0] - 1.0).abs() < 0.01);
    assert!((solver.params_for_row(1).m[1] - 1.0).abs() < 0.01);
    assert!(solver.params_for_row(2).m[0].abs() < 0.01);
    // Harmonic decay: v(2τ)/v(τ) → 1/2.
    let ratio = values[511] / values[255];
    assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    // And the log-log slope over the tail ≈ −1.
    let lo = values[127].ln();
    let hi = values[511].ln();
    let slope = (hi - lo) / ((512.0f64 / 128.0).ln());
    assert!((slope + 1.0).abs() < 0.1, "slope {slope}");
}

#[test]
fn replication_with_noise_fixes_case_b_convergence() {
    // Paper §II-A-2: replicating each data point with noise bounds the
    // background variance from below and turns Case B's harmonic crawl
    // into fast convergence.
    let data = adversarial_toy();
    let plain_constraints = |data: &Matrix| {
        let mut cs = axis_constraints(data, &[0, 2]);
        cs.extend(axis_constraints(data, &[1, 2]));
        cs
    };
    let strict = FitOpts {
        lambda_tol: 1e-4,
        moment_tol: 0.0, // isolate the λ criterion
        max_sweeps: 200,
        ..FitOpts::default()
    };

    // Plain Case B: no convergence within the budget.
    let mut plain = Solver::new(&data, plain_constraints(&data)).unwrap();
    let plain_report = plain.fit(&strict);
    assert!(!plain_report.converged, "{plain_report:?}");

    // Replicated ×10 with σ=0.2, selections expanded per the paper.
    let ds = sider::data::Dataset::unlabeled("adv", data);
    let mut rng = Rng::seed_from_u64(17);
    let (big, groups) = ds.replicate_with_noise(10, 0.2, &mut rng);
    let expand =
        |rows: &[usize]| -> Vec<usize> { rows.iter().flat_map(|&r| groups[r].clone()).collect() };
    let mut cs = axis_constraints(&big.matrix, &expand(&[0, 2]));
    cs.extend(axis_constraints(&big.matrix, &expand(&[1, 2])));
    let mut replicated = Solver::new(&big.matrix, cs).unwrap();
    let rep_report = replicated.fit(&strict);
    assert!(rep_report.converged, "{rep_report:?}");
    assert!(rep_report.sweeps < 200);
    // The variance floor is of order σ² — bounded away from zero, unlike
    // the plain Case B optimum where every variance is exactly zero.
    let v = replicated.params_for_row(0).sigma[(0, 0)];
    assert!(v > 1e-3, "variance collapsed anyway: {v}");
    // And the replicated fit left smaller residuals than the plain one.
    let plain_res = plain_report.last.unwrap().max_residual;
    let rep_res = rep_report.last.unwrap().max_residual;
    assert!(
        rep_res < plain_res,
        "replication did not help: {rep_res} vs {plain_res}"
    );
}

#[test]
fn margin_constraints_equal_column_standardization() {
    // Paper §II-A: "adding a margin constraint … is equivalent to first
    // transforming the data to zero mean and unit variance".
    let mut rng = Rng::seed_from_u64(21);
    let data = Matrix::from_fn(300, 3, |_, j| rng.normal(j as f64 * 2.0, 1.0 + j as f64));
    let mut solver = Solver::new(&data, margin_constraints(&data).unwrap()).unwrap();
    solver.fit(&FitOpts {
        lambda_tol: 1e-10,
        moment_tol: 1e-10,
        max_sweeps: 2000,
        ..FitOpts::default()
    });
    let y = solver.distribution().whiten(&data).unwrap();
    for j in 0..3 {
        let col = y.col(j);
        let mean = sider::stats::descriptive::mean(&col);
        let var = sider::stats::descriptive::population_variance(&col);
        assert!(mean.abs() < 1e-6, "col {j} mean {mean}");
        assert!((var - 1.0).abs() < 1e-6, "col {j} var {var}");
    }
}

#[test]
fn one_cluster_constraint_equals_full_whitening() {
    // Paper §II-A: the 1-cluster constraint is equivalent to whitening the
    // data (correlations included).
    let mut rng = Rng::seed_from_u64(23);
    // Correlated data.
    let data = Matrix::from_fn(400, 2, |_, _| 0.0);
    let mut data = data;
    for i in 0..400 {
        let a = rng.normal(1.0, 2.0);
        let b = 0.8 * a + rng.normal(-3.0, 0.5);
        data[(i, 0)] = a;
        data[(i, 1)] = b;
    }
    let mut solver = Solver::new(&data, one_cluster_constraints(&data).unwrap()).unwrap();
    solver.fit(&FitOpts {
        lambda_tol: 1e-10,
        moment_tol: 1e-10,
        max_sweeps: 2000,
        ..FitOpts::default()
    });
    let y = solver.distribution().whiten(&data).unwrap();
    // Whitened second moment (about 0) must be the identity.
    let sm = sider::stats::descriptive::second_moment(&y);
    assert!(sm.max_abs_diff(&Matrix::identity(2)) < 1e-6, "{sm:?}");
}

#[test]
fn sampled_datasets_reproduce_constraint_targets_in_expectation() {
    // E_p[f_c(X)] = v̂ ⇒ averaging f_c over sampled datasets approaches
    // the target (Monte-Carlo check of the sampling contract).
    let mut rng = Rng::seed_from_u64(29);
    let data = Matrix::from_fn(50, 2, |_, j| rng.normal(1.0 - j as f64, 1.5));
    let cs = margin_constraints(&data).unwrap();
    let mut solver = Solver::new(&data, cs.clone()).unwrap();
    solver.fit(&FitOpts {
        lambda_tol: 1e-10,
        moment_tol: 1e-10,
        max_sweeps: 2000,
        ..FitOpts::default()
    });
    let bg = solver.distribution();
    let mut sample_rng = Rng::seed_from_u64(31);
    let reps = 600;
    let mut means = vec![0.0; cs.len()];
    for _ in 0..reps {
        let x = bg.sample(&mut sample_rng);
        for (t, c) in cs.iter().enumerate() {
            means[t] += c.evaluate(&x);
        }
    }
    for (t, c) in cs.iter().enumerate() {
        let mc = means[t] / reps as f64;
        let scale = c.target.abs().max(50.0);
        assert!(
            (mc - c.target).abs() / scale < 0.1,
            "constraint {t} ({}) MC {mc} vs target {}",
            c.label,
            c.target
        );
    }
}

#[test]
fn whitening_is_direction_preserving() {
    // Eq. 14 uses the *symmetric* square root U D^{1/2} Uᵀ: for isotropic
    // scaling constraints, whitening must not rotate the data.
    let mut rng = Rng::seed_from_u64(37);
    let data = Matrix::from_fn(200, 2, |_, _| rng.normal(0.0, 3.0));
    let mut solver = Solver::new(&data, margin_constraints(&data).unwrap()).unwrap();
    solver.fit(&FitOpts::default());
    let y = solver.distribution().whiten(&data).unwrap();
    // Each whitened row must be positively aligned with the centered raw
    // row (cosine > 0.9): pure rescaling plus small cross terms.
    let means = data.col_means();
    for i in 0..data.rows() {
        let raw = sider::linalg::vector::sub(data.row(i), &means);
        let cos = sider::linalg::vector::dot(&raw, y.row(i))
            / (sider::linalg::vector::norm2(&raw) * sider::linalg::vector::norm2(y.row(i)));
        assert!(cos > 0.9, "row {i} cosine {cos}");
    }
}
