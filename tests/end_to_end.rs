//! Cross-crate integration tests: full interactive sessions over every
//! dataset family, plus degenerate-input behavior.

use sider::core::{explore, EdaSession, ExplorationConfig, SimulatedUser};
use sider::data::Dataset;
use sider::linalg::Matrix;
use sider::maxent::FitOpts;
use sider::projection::{IcaOpts, Method};
use sider::stats::Rng;

#[test]
fn fig2_flow_end_to_end() {
    let dataset = sider::data::synthetic::three_d_four_clusters(2018);
    let mut session = EdaSession::new(dataset, 7).unwrap();
    let mut user = SimulatedUser::new(6, 5, 42);

    let view1 = session.next_view(&Method::Pca).unwrap();
    let clusters = user.perceive_clusters(&view1);
    assert_eq!(clusters.len(), 3);
    for c in &clusters {
        session.add_cluster_constraint(c).unwrap();
    }
    let report = session.update_background(&FitOpts::default()).unwrap();
    assert!(report.converged);

    let view2 = session.next_view(&Method::Ica(IcaOpts::default())).unwrap();
    let clusters2 = user.perceive_clusters(&view2);
    assert_eq!(clusters2.len(), 4, "hidden split must surface");
}

#[test]
fn xhat5_ica_loop_scores_decay() {
    let dataset = sider::data::synthetic::xhat5(600, 42);
    let mut session = EdaSession::new(dataset, 11).unwrap();
    let mut user = SimulatedUser::new(8, 15, 33);
    let config = ExplorationConfig {
        method: Method::Ica(IcaOpts::default()),
        fit: FitOpts::default(),
        max_iterations: 5,
        score_threshold: 0.02,
    };
    let records = explore(&mut session, &mut user, &config).unwrap();
    assert!(records.len() >= 2);
    let first = records[0].scores[0].abs();
    let last = records.last().unwrap().scores[0].abs();
    assert!(last < first, "{first} -> {last}");
    // The first iteration must mark ≈4 clusters (A–D).
    assert!(records[0].marked_clusters.len() >= 3);
}

#[test]
fn session_survives_constant_column() {
    // A constant column yields zero-variance margin constraints; the
    // session must stay finite and usable.
    let mut rng = Rng::seed_from_u64(3);
    let m = Matrix::from_fn(
        80,
        3,
        |_, j| if j == 2 { 5.0 } else { rng.normal(0.0, 1.0) },
    );
    let ds = Dataset::unlabeled("const-col", m);
    let mut session = EdaSession::new(ds, 1).unwrap();
    session.add_margin_constraints().unwrap();
    let report = session.update_background(&FitOpts::default()).unwrap();
    assert!(report.sweeps >= 1);
    let y = session.whitened().unwrap();
    assert!(y.is_finite());
    let view = session.next_view(&Method::Pca).unwrap();
    assert!(view.projected_data.is_finite());
}

#[test]
fn session_survives_duplicate_rows_and_tiny_clusters() {
    // Clusters smaller than d create zero-variance directions (paper
    // §II-A-2); duplicated rows stress the equivalence classes.
    let mut rng = Rng::seed_from_u64(5);
    let mut rows: Vec<Vec<f64>> = (0..20)
        .map(|_| (0..4).map(|_| rng.normal(0.0, 1.0)).collect())
        .collect();
    rows.push(rows[0].clone());
    rows.push(rows[0].clone());
    let ds = Dataset::unlabeled("dups", Matrix::from_rows(&rows));
    let mut session = EdaSession::new(ds, 2).unwrap();
    session.add_cluster_constraint(&[0, 20, 21]).unwrap(); // 3 points in 4-D
    session.add_cluster_constraint(&[1, 2]).unwrap(); // 2 points in 4-D
    let report = session.update_background(&FitOpts::default()).unwrap();
    assert!(report.sweeps >= 1);
    assert!(session.whitened().unwrap().is_finite());
}

#[test]
fn n_smaller_than_d_works() {
    let mut rng = Rng::seed_from_u64(7);
    let m = rng.standard_normal_matrix(6, 10);
    let ds = Dataset::unlabeled("wide", m);
    let mut session = EdaSession::new(ds, 3).unwrap();
    session.add_one_cluster_constraint().unwrap();
    session.update_background(&FitOpts::default()).unwrap();
    let view = session.next_view(&Method::Pca).unwrap();
    assert!(view.projected_data.is_finite());
}

#[test]
fn twod_constraints_absorb_view_moments() {
    // After a 2-D constraint on the current axes for all rows, the data's
    // mean/variance along those axes match the background's.
    let dataset = sider::data::synthetic::three_d_four_clusters(9);
    let n = dataset.n();
    let mut session = EdaSession::new(dataset, 4).unwrap();
    let view = session.next_view(&Method::Pca).unwrap();
    let all: Vec<usize> = (0..n).collect();
    session
        .add_twod_constraint(&all, &view.projection.axes)
        .unwrap();
    session
        .update_background(&FitOpts {
            lambda_tol: 1e-8,
            moment_tol: 1e-8,
            max_sweeps: 2000,
            ..FitOpts::default()
        })
        .unwrap();
    // Whitened variance along the constrained axes must now be ≈ 1.
    let y = session.whitened().unwrap();
    let w = session.background();
    assert_eq!(w.n(), n);
    let proj = sider::projection::project(&y, &view.projection.axes);
    for k in 0..2 {
        let col = proj.col(k);
        // Whitened projection onto a *raw-space* axis is not exactly the
        // whitened coordinate, so allow slack; the key is order-1 scale.
        let var = sider::stats::descriptive::population_variance(&col);
        assert!(var < 3.0, "axis {k} variance {var}");
    }
    // And the direct check: background second moment along the axes
    // matches the data's.
    for k in 0..2 {
        let axis = view.projection.axes.row(k);
        let data_proj: Vec<f64> = (0..n)
            .map(|i| sider::linalg::vector::dot(session.data().row(i), axis))
            .collect();
        let data_mean = sider::stats::descriptive::mean(&data_proj);
        let bg_mean: f64 = (0..n)
            .map(|i| sider::linalg::vector::dot(w.mean(i), axis))
            .sum::<f64>()
            / n as f64;
        assert!((data_mean - bg_mean).abs() < 1e-3, "axis {k}");
    }
}

#[test]
fn exploration_on_pure_noise_stops_quickly() {
    let mut rng = Rng::seed_from_u64(13);
    let m = rng.standard_normal_matrix(400, 4);
    let ds = Dataset::unlabeled("noise", m);
    let mut session = EdaSession::new(ds, 6).unwrap();
    session.add_margin_constraints().unwrap();
    session.update_background(&FitOpts::default()).unwrap();
    let mut user = SimulatedUser::new(5, 10, 8);
    let config = ExplorationConfig {
        method: Method::Pca,
        fit: FitOpts::default(),
        max_iterations: 3,
        score_threshold: 0.05,
    };
    let records = explore(&mut session, &mut user, &config).unwrap();
    assert!(records.last().unwrap().stopped);
}
