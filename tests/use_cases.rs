//! Downscaled versions of the paper's §IV use cases, fast enough for the
//! default (debug) test profile.

use sider::core::{EdaSession, SimulatedUser};
use sider::maxent::FitOpts;
use sider::projection::Method;
use sider::stats::metrics::{best_class_match, jaccard};

#[test]
fn bnc_first_selection_is_conversations() {
    // §IV-B, first interaction: the tight group in the first informative
    // view is the 'transcribed conversations' genre (paper Jaccard 0.928).
    let dataset = sider::data::bnc::bnc_small(2018);
    let genres = dataset.primary_labels().unwrap().clone();
    let mut session = EdaSession::new(dataset, 5).unwrap();
    session.add_margin_constraints().unwrap();
    session.update_background(&FitOpts::default()).unwrap();

    let view = session.next_view(&Method::Pca).unwrap();
    assert!(view.scores()[0] > 0.5, "initial view uninformative");
    let mut user = SimulatedUser::new(5, 8, 17);
    let clusters = user.perceive_clusters(&view);
    assert!(!clusters.is_empty());
    // The most coherent (smallest) cluster is the conversations genre.
    let selection = clusters.last().unwrap();
    let (class, j) = best_class_match(selection, &genres.assignments, 4);
    assert_eq!(genres.class_names[class], "transcribed conversations");
    assert!(j > 0.8, "Jaccard {j} (paper: 0.928)");
}

#[test]
fn bnc_scores_drop_after_selections() {
    let dataset = sider::data::bnc::bnc_small(7);
    let mut session = EdaSession::new(dataset, 5).unwrap();
    session.add_margin_constraints().unwrap();
    session.update_background(&FitOpts::default()).unwrap();
    let mut user = SimulatedUser::new(5, 8, 17);
    let fit = FitOpts {
        lambda_tol: 1e-4,
        moment_tol: 1e-4,
        max_sweeps: 800,
        ..FitOpts::default()
    };
    let first = session.next_view(&Method::Pca).unwrap().scores()[0];
    let mut marked: Vec<Vec<usize>> = Vec::new();
    for _ in 0..3 {
        let view = session.next_view(&Method::Pca).unwrap();
        let clusters = user.perceive_clusters(&view);
        let Some(sel) = clusters
            .iter()
            .rev()
            .find(|c| marked.iter().all(|m| jaccard(c, m) < 0.5))
            .cloned()
        else {
            break;
        };
        session.add_cluster_constraint(&sel).unwrap();
        marked.push(sel);
        session.update_background(&fit).unwrap();
    }
    let last = session.next_view(&Method::Pca).unwrap().scores()[0];
    assert!(
        last < first * 0.25,
        "scores did not drop enough: {first} → {last}"
    );
}

#[test]
fn segmentation_scale_mismatch_then_structure() {
    // §IV-C: the initial view is dominated by the scale mismatch; the
    // 1-cluster constraint removes it entirely.
    let dataset = sider::data::segmentation::segmentation_like(
        &sider::data::segmentation::SegmentationOpts {
            per_class: 40,
            n_outliers: 4,
        },
        2018,
    );
    let mut session = EdaSession::new(dataset, 3).unwrap();
    let before = session.next_view(&Method::Pca).unwrap().scores()[0];
    assert!(before > 100.0, "scale mismatch should dominate: {before}");
    session.add_one_cluster_constraint().unwrap();
    session.update_background(&FitOpts::default()).unwrap();
    let after = session.next_view(&Method::Pca).unwrap().scores()[0];
    assert!(after < 0.1, "covariance must be absorbed: {after}");
}

#[test]
fn segmentation_outliers_surface_in_ica_view() {
    let dataset = sider::data::segmentation::segmentation_like(
        &sider::data::segmentation::SegmentationOpts {
            per_class: 40,
            n_outliers: 4,
        },
        2018,
    );
    let outliers = dataset.labels[1].clone();
    let mut session = EdaSession::new(dataset, 3).unwrap();
    session.add_one_cluster_constraint().unwrap();
    session.update_background(&FitOpts::default()).unwrap();
    let view = session
        .next_view(&Method::Ica(sider::projection::IcaOpts::default()))
        .unwrap();
    // The most extreme projected points must include injected outliers.
    let pts = view.points();
    let mut extremes: Vec<(usize, f64)> = pts
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| (i, x.abs().max(y.abs())))
        .collect();
    extremes.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let truth = outliers.class_indices(1);
    let top: Vec<usize> = extremes.iter().take(truth.len()).map(|&(i, _)| i).collect();
    let hits = top.iter().filter(|i| truth.contains(i)).count();
    assert!(
        hits * 2 >= truth.len(),
        "only {hits}/{} outliers surfaced",
        truth.len()
    );
}

#[test]
#[allow(clippy::needless_range_loop)]
fn bnc_corpus_statistics_are_plausible() {
    // Guard the simulator itself: Zipf-ish top-word dominance and genre
    // separability measured by a simple centroid classifier.
    let dataset = sider::data::bnc::bnc_small(3);
    let genres = dataset.primary_labels().unwrap().clone();
    let std = dataset.standardized();
    // Nearest-centroid accuracy must be high (genres are separable).
    let mut centroids = vec![vec![0.0; std.d()]; 4];
    let sizes = genres.class_sizes();
    for i in 0..std.n() {
        let g = genres.assignments[i];
        for j in 0..std.d() {
            centroids[g][j] += std.matrix[(i, j)] / sizes[g] as f64;
        }
    }
    let mut correct = 0;
    for i in 0..std.n() {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (g, c) in centroids.iter().enumerate() {
            let d = sider::linalg::vector::dist(std.matrix.row(i), c);
            if d < best_d {
                best_d = d;
                best = g;
            }
        }
        if best == genres.assignments[i] {
            correct += 1;
        }
    }
    let acc = correct as f64 / std.n() as f64;
    assert!(acc > 0.9, "nearest-centroid accuracy {acc}");
}
